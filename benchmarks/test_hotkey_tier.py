"""Ablation benchmark for the adaptive hot-key tier.

Sweeps Zipf skew (``zipf_theta``) with the tier off and on at a fixed
operating point -- 4 clients x 12 outstanding queries, just past the
scaled client-NIC knee -- and records aggregate read throughput and p99
read latency for each point into ``results/ablation_hotkey_tier.json``.

What the numbers mean under the scale model: at scale 1000 the client
host NICs (DPDK, 20.5 kpps each) saturate long before the switches
(4 Mpps), matching the paper's observation that clients, not switches,
bound measured throughput.  Skew therefore never bottlenecks a switch
here; the tier's win is client-side read coalescing (duplicate hot-key
reads shed off the NIC) plus avoiding retry-driven congestion collapse
past the NIC knee.  Chain widening spreads load across switch replicas
-- machinery exercised by the unit tests (``tests/test_hotkeys.py``)
but throughput-neutral at this operating point.

A second smoke test re-runs the skewed scenario on short windows with
the per-key linearizability checker enabled, in both modes, and asserts
replay-identical signatures -- the correctness half of the ablation.
"""

from __future__ import annotations

from bench_utils import full_mode, record_result
from repro.deploy import DeploymentSpec, ScenarioChecks, WorkloadSpec, run_scenario

#: Zipf skew points: the quick set brackets uniform vs paper-skewed; the
#: full sweep (NETCHAIN_BENCH_FULL=1) fills in the curve.
THETAS_QUICK = (0.0, 0.99)
THETAS_FULL = (0.0, 0.5, 0.9, 0.99, 1.2)


def _spec(hotkey_tier: bool) -> DeploymentSpec:
    return DeploymentSpec(backend="netchain", store_size=64, seed=7,
                          hotkey_tier=hotkey_tier,
                          options={"hotkey_tier": {"hot_threshold": 16}})


def _workload(theta: float, duration: float = 0.2) -> WorkloadSpec:
    return WorkloadSpec(num_clients=4, concurrency=12, write_ratio=0.1,
                        zipf_theta=theta, duration=duration, drain=0.1)


def _run(theta: float, hotkey_tier: bool, duration: float = 0.2,
         linearizability: bool = False):
    # Throughput points run with the linearizability checker off: the
    # checker's per-state cost grows with the ops on a key, so a skewed
    # 0.2 s window would spend minutes checking, not measuring.  The
    # correctness smoke test below covers the same scenario shape on a
    # window short enough to check exhaustively.
    result = run_scenario(_spec(hotkey_tier), _workload(theta, duration),
                          ScenarioChecks(linearizability=linearizability))
    assert result.ok(), result.failures
    assert result.hotkey_tier_active == hotkey_tier
    return result


def _read_qps(result) -> float:
    ops = result.read_ops + result.write_ops
    return result.success_qps * (result.read_ops / ops) if ops else 0.0


def test_hotkey_tier_smoke_skew_ablation(benchmark):
    thetas = THETAS_FULL if full_mode() else THETAS_QUICK

    def run():
        points = []
        for theta in thetas:
            off = _run(theta, hotkey_tier=False)
            on = _run(theta, hotkey_tier=True)
            points.append({
                "theta": theta,
                "off_read_qps": _read_qps(off),
                "on_read_qps": _read_qps(on),
                "off_p99_us": off.read_latency_p99 * 1e6,
                "on_p99_us": on.read_latency_p99 * 1e6,
            })
        return points

    points = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = []
    speedups = {}
    for point in points:
        speedup = point["on_read_qps"] / max(point["off_read_qps"], 1e-9)
        speedups[point["theta"]] = speedup
        lines.append(
            f"zipf_theta {point['theta']:.2f}: "
            f"read qps tier-off {point['off_read_qps']:7.0f} "
            f"tier-on {point['on_read_qps']:7.0f} ({speedup:5.2f}x)  "
            f"p99 read tier-off {point['off_p99_us']:7.1f} us "
            f"tier-on {point['on_p99_us']:7.1f} us")
    record_result("ablation_hotkey_tier",
                  "Ablation: adaptive hot-key tier vs Zipf skew", lines)
    # The acceptance bar: at paper-level skew the tier at least doubles
    # aggregate read throughput.
    assert speedups[0.99] >= 2.0
    # And it must not hurt the uniform workload.
    assert speedups[0.0] >= 0.9


def test_hotkey_tier_smoke_linearizable_and_deterministic(benchmark):
    def run():
        outcomes = {}
        for hotkey_tier in (False, True):
            first = _run(0.99, hotkey_tier, duration=0.05,
                         linearizability=True)
            second = _run(0.99, hotkey_tier, duration=0.05,
                          linearizability=True)
            assert first.linearizability is not None
            assert first.linearizability.ok
            assert first.signature() == second.signature()
            outcomes["tier on" if hotkey_tier else "tier off"] = \
                first.completed_ops
        return outcomes

    outcomes = benchmark.pedantic(run, rounds=1, iterations=1)
    assert all(count > 0 for count in outcomes.values())
