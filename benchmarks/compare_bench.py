"""Compare two perf reports and fail on regression.

Diffs two ``netchain-perf-report/v1`` JSON files (see
``benchmarks/perf_report.py``) and exits non-zero when any gated metric
regressed by more than the tolerance::

    PYTHONPATH=src python benchmarks/compare_bench.py \\
        benchmarks/baseline.json BENCH_PR5.json --tolerance 0.15

By default only **calibrated** metrics are gated -- throughput divided by a
pure engine-churn loop timed on the same machine -- so a slower CI runner
does not read as a code regression.  ``--raw`` additionally gates the raw
events/sec numbers (useful when both reports come from the same machine).

Improvements are reported but never fail the comparison.  One exception
to the tolerance rule: ``verify.data_bytes`` (the spilled NDJSON size at
a fixed seed and op count) and ``observability.trace_bytes`` (the
spilled ``trace/v1`` size of the traced macro) are seed-deterministic
and gated on *any* change in either direction -- a drift there means an
on-disk encoding changed and the baseline needs a deliberate refresh.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

SCHEMA = "netchain-perf-report/v1"

#: Measurements shorter than this (seconds) are too noisy to gate on --
#: they are reported as "info" instead of failing the comparison.
MIN_GATED_WALL_S = 0.05


def _long_enough(*entries: dict) -> bool:
    return all(entry.get("wall_clock_s", 0.0) >= MIN_GATED_WALL_S for entry in entries)


class Comparison:
    """Accumulates metric comparisons and the resulting verdict."""

    def __init__(self, tolerance: float) -> None:
        self.tolerance = tolerance
        self.rows = []
        self.regressions = []

    def check(
        self,
        name: str,
        old: float,
        new: float,
        higher_is_better: bool,
        gated: bool = True,
    ) -> None:
        if old is None or new is None:
            return
        if old <= 0:
            delta = 0.0
        elif higher_is_better:
            delta = (new - old) / old  # negative = regression
        else:
            delta = (old - new) / old  # negative = regression
        regressed = gated and delta < -self.tolerance
        self.rows.append((name, old, new, delta, regressed, gated))
        if regressed:
            self.regressions.append(name)

    def render(self) -> str:
        lines = [f"{'metric':55} {'old':>14} {'new':>14} {'delta':>8}  verdict"]
        for name, old, new, delta, regressed, gated in self.rows:
            verdict = "REGRESSED" if regressed else "ok" if gated else "info"
            lines.append(f"{name:55} {old:14,.3f} {new:14,.3f} {delta:+8.1%}  {verdict}")
        return "\n".join(lines)


def load_report(path: str) -> dict:
    report = json.loads(Path(path).read_text(encoding="utf-8"))
    schema = report.get("schema")
    if schema != SCHEMA:
        raise SystemExit(f"{path}: unsupported schema {schema!r} (expected {SCHEMA!r})")
    return report


def compare(old: dict, new: dict, tolerance: float, include_raw: bool = False) -> Comparison:
    """Compare two loaded reports; see module docstring for the gating."""
    cmp = Comparison(tolerance)

    cmp.check(
        "macro.events_per_sec_calibrated",
        old["macro"].get("events_per_sec_calibrated"),
        new["macro"].get("events_per_sec_calibrated"),
        higher_is_better=True,
    )
    cmp.check(
        "macro.events_per_sec",
        old["macro"].get("events_per_sec"),
        new["macro"].get("events_per_sec"),
        higher_is_better=True,
        gated=include_raw,
    )

    # The skewed macro (hot-key tier ablation) is gated only when both
    # reports carry it, so the section can be introduced before the
    # committed baseline is refreshed.
    old_skewed = old.get("macro_skewed", {})
    new_skewed = new.get("macro_skewed", {})
    for mode in sorted(
        name
        for name in set(old_skewed) & set(new_skewed)
        if isinstance(old_skewed[name], dict)
    ):
        cmp.check(
            f"macro_skewed.{mode}.events_per_sec_calibrated",
            old_skewed[mode].get("events_per_sec_calibrated"),
            new_skewed[mode].get("events_per_sec_calibrated"),
            higher_is_better=True,
            gated=_long_enough(old_skewed[mode], new_skewed[mode]),
        )
    cmp.check(
        "macro_skewed.tier_speedup_sim_qps",
        old_skewed.get("tier_speedup_sim_qps"),
        new_skewed.get("tier_speedup_sim_qps"),
        # Simulated, seed-deterministic: a drop means the tier itself got
        # less effective, not that the runner was slow.
        higher_is_better=True,
    )

    for name in sorted(set(old.get("backends", {})) & set(new.get("backends", {}))):
        cmp.check(
            f"backends.{name}.events_per_sec_calibrated",
            old["backends"][name].get("events_per_sec_calibrated"),
            new["backends"][name].get("events_per_sec_calibrated"),
            higher_is_better=True,
            gated=_long_enough(old["backends"][name], new["backends"][name]),
        )
        cmp.check(
            f"backends.{name}.events_per_sec",
            old["backends"][name].get("events_per_sec"),
            new["backends"][name].get("events_per_sec"),
            higher_is_better=True,
            gated=include_raw,
        )

    for name in sorted(set(old.get("figures", {})) & set(new.get("figures", {}))):
        cmp.check(
            f"figures.{name}.calibrated_cost",
            old["figures"][name].get("calibrated_cost"),
            new["figures"][name].get("calibrated_cost"),
            higher_is_better=False,
            gated=_long_enough(old["figures"][name], new["figures"][name]),
        )
        cmp.check(
            f"figures.{name}.wall_clock_s",
            old["figures"][name].get("wall_clock_s"),
            new["figures"][name].get("wall_clock_s"),
            higher_is_better=False,
            gated=include_raw,
        )

    # The scenario matrix, gated only when both reports carry the section.
    # The cell/op counts and the grid replay digest are seed-deterministic,
    # so they drift-gate at tolerance 0 (any change needs a deliberate
    # baseline refresh); cells/sec follows the calibration rules.
    old_matrix = old.get("matrix")
    new_matrix = new.get("matrix")
    if old_matrix and new_matrix:
        cmp.check(
            "matrix.cells_per_sec_calibrated",
            old_matrix.get("cells_per_sec_calibrated"),
            new_matrix.get("cells_per_sec_calibrated"),
            higher_is_better=True,
            gated=_long_enough(old_matrix, new_matrix),
        )
        cmp.check(
            "matrix.cells_per_sec",
            old_matrix.get("cells_per_sec"),
            new_matrix.get("cells_per_sec"),
            higher_is_better=True,
            gated=include_raw,
        )
        if old_matrix.get("cells") == new_matrix.get("cells"):
            for field in ("ok_cells", "completed_ops"):
                old_value = old_matrix.get(field)
                new_value = new_matrix.get(field)
                if old_value is None or new_value is None:
                    continue
                delta = (new_value - old_value) / old_value if old_value else 0.0
                drifted = old_value != new_value
                cmp.rows.append(
                    (f"matrix.{field}", old_value, new_value, delta, drifted, True)
                )
                if drifted:
                    cmp.regressions.append(f"matrix.{field}")
            old_digest = old_matrix.get("signature_sha256")
            new_digest = new_matrix.get("signature_sha256")
            if old_digest and new_digest and old_digest != new_digest:
                cmp.rows.append(
                    ("matrix.signature_sha256", 0.0, 1.0, 0.0, True, True)
                )
                cmp.regressions.append("matrix.signature_sha256")

    # The verification pipeline, gated (like macro_skewed) only when both
    # reports carry the section.  data_bytes is seed-deterministic: any
    # change at all means the NDJSON encoding or generator changed, which
    # must come with a deliberate baseline refresh -- tolerance 0.
    old_verify = old.get("verify")
    new_verify = new.get("verify")
    if old_verify and new_verify:
        cmp.check(
            "verify.checked_ops_per_sec_calibrated",
            old_verify.get("checked_ops_per_sec_calibrated"),
            new_verify.get("checked_ops_per_sec_calibrated"),
            higher_is_better=True,
            gated=_long_enough(old_verify, new_verify),
        )
        cmp.check(
            "verify.checked_ops_per_sec",
            old_verify.get("checked_ops_per_sec"),
            new_verify.get("checked_ops_per_sec"),
            higher_is_better=True,
            gated=include_raw,
        )
        if old_verify.get("ops") == new_verify.get("ops"):
            old_bytes = old_verify.get("data_bytes")
            new_bytes = new_verify.get("data_bytes")
            if old_bytes is not None and new_bytes is not None:
                delta = (new_bytes - old_bytes) / old_bytes if old_bytes else 0.0
                drifted = old_bytes != new_bytes
                cmp.rows.append(("verify.data_bytes", old_bytes, new_bytes, delta, drifted, True))
                if drifted:
                    cmp.regressions.append("verify.data_bytes")
        cmp.check(
            "verify.peak_rss_bytes",
            old_verify.get("peak_rss_bytes"),
            new_verify.get("peak_rss_bytes"),
            higher_is_better=False,
            gated=include_raw,
        )

    # The traced macro (telemetry plane enabled), gated only when both
    # reports carry the section.  trace_bytes mirrors verify.data_bytes:
    # seed-deterministic, so any drift means the trace/v1 encoding or the
    # instrumented event set changed -- tolerance 0, refresh deliberately.
    old_obs = old.get("observability")
    new_obs = new.get("observability")
    if old_obs and new_obs:
        cmp.check(
            "observability.events_per_sec_calibrated",
            old_obs.get("events_per_sec_calibrated"),
            new_obs.get("events_per_sec_calibrated"),
            higher_is_better=True,
            gated=_long_enough(old_obs, new_obs),
        )
        cmp.check(
            "observability.events_per_sec",
            old_obs.get("events_per_sec"),
            new_obs.get("events_per_sec"),
            higher_is_better=True,
            gated=include_raw,
        )
        if (
            old_obs.get("seed") == new_obs.get("seed")
            and old_obs.get("processed_events") == new_obs.get("processed_events")
        ):
            old_bytes = old_obs.get("trace_bytes")
            new_bytes = new_obs.get("trace_bytes")
            if old_bytes is not None and new_bytes is not None:
                delta = (new_bytes - old_bytes) / old_bytes if old_bytes else 0.0
                drifted = old_bytes != new_bytes
                cmp.rows.append(
                    ("observability.trace_bytes", old_bytes, new_bytes, delta, drifted, True)
                )
                if drifted:
                    cmp.regressions.append("observability.trace_bytes")
        cmp.check(
            "observability.overhead_ratio",
            old_obs.get("overhead_ratio"),
            new_obs.get("overhead_ratio"),
            higher_is_better=False,
            gated=include_raw,
        )

    # Peak RSS is machine/allocator-dependent (interpreter build, malloc),
    # so like the other raw metrics it only gates same-machine comparisons.
    cmp.check(
        "peak_rss_bytes",
        old.get("peak_rss_bytes"),
        new.get("peak_rss_bytes"),
        higher_is_better=False,
        gated=include_raw,
    )
    return cmp


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline", help="baseline report (old)")
    parser.add_argument("candidate", help="candidate report (new)")
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.15,
        help="allowed fractional regression (default 0.15)",
    )
    parser.add_argument(
        "--raw",
        action="store_true",
        help="also gate raw (machine-dependent) metrics",
    )
    args = parser.parse_args(argv)

    old = load_report(args.baseline)
    new = load_report(args.candidate)
    cmp = compare(old, new, tolerance=args.tolerance, include_raw=args.raw)
    print(cmp.render())
    if cmp.regressions:
        print(
            f"\nFAIL: {len(cmp.regressions)} metric(s) regressed more than "
            f"{args.tolerance:.0%}: {', '.join(cmp.regressions)}",
            file=sys.stderr,
        )
        return 1
    print(f"\nOK: no gated metric regressed more than {args.tolerance:.0%}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
