"""Figure 9(e): latency vs throughput.

Paper result: NetChain serves both reads and writes at 9.7 us (the client's
DPDK stack dominates; switch processing is deterministic and
sub-microsecond), independent of load until the chain saturates.  ZooKeeper
reads take ~170 us and writes ~2350 us at low load, rising as the ensemble
approaches saturation (230 KQPS reads / 27 KQPS writes).
"""

from __future__ import annotations

import pytest

from bench_utils import full_mode, record_result
from repro.experiments import netchain_latency_curve, zookeeper_latency_curve

NETCHAIN_CONCURRENCY = (1, 4, 16) if not full_mode() else (1, 2, 4, 8, 16, 32)
ZK_CLIENTS = (1, 10, 25) if not full_mode() else (1, 5, 10, 25, 50, 100)


def run_curves():
    netchain = netchain_latency_curve(concurrency_levels=NETCHAIN_CONCURRENCY,
                                      store_size=200, duration=0.05, warmup=0.01)
    zookeeper = zookeeper_latency_curve(client_counts=ZK_CLIENTS, store_size=200,
                                        duration=0.4, warmup=0.1)
    return netchain, zookeeper


def test_fig9e_latency_vs_throughput(benchmark):
    netchain, zookeeper = benchmark.pedantic(run_curves, rounds=1, iterations=1)
    lines = [f"{'system':>10} {'op':>6} | {'throughput (QPS)':>17} | {'mean latency (us)':>18}"]
    for point in netchain + zookeeper:
        lines.append(f"{point.system:>10} {point.op:>6} | {point.qps:>17.0f} | "
                     f"{point.latency_us:>18.1f}")
    record_result("fig9e_latency", "Figure 9(e): latency vs throughput", lines)

    netchain_reads = [p for p in netchain if p.op == "read"]
    netchain_writes = [p for p in netchain if p.op == "write"]
    zk_reads = [p for p in zookeeper if p.op == "read"]
    zk_writes = [p for p in zookeeper if p.op == "write"]

    # NetChain: ~10 us for reads and writes alike, flat in offered load.
    for point in netchain_reads + netchain_writes:
        assert point.latency_us == pytest.approx(9.7, abs=8.0)
    spread = max(p.latency_us for p in netchain_reads) - \
        min(p.latency_us for p in netchain_reads)
    assert spread < 5.0
    # Reads and writes cost the same in the evaluated chain.
    assert abs(netchain_reads[0].latency_us - netchain_writes[0].latency_us) < 5.0

    # ZooKeeper: ~170 us reads, ~2350 us writes at low load; writes are far
    # slower than reads.
    assert zk_reads[0].latency_us == pytest.approx(170.0, rel=0.5)
    assert zk_writes[0].latency_us == pytest.approx(2350.0, rel=0.5)
    assert zk_writes[0].latency_us > 5 * zk_reads[0].latency_us
    assert zk_reads[-1].latency_us >= 0.8 * zk_reads[0].latency_us

    # Orders of magnitude: NetChain latency is ~20x below ZooKeeper reads and
    # ~200x below ZooKeeper writes.
    assert zk_reads[0].latency_us > 10 * netchain_reads[0].latency_us
    assert zk_writes[0].latency_us > 100 * netchain_writes[0].latency_us
