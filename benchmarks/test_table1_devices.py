"""Table 1: comparison of packet-processing capabilities (server vs switch).

Regenerates the rows of Table 1 from the device models used throughout the
reproduction, and checks the orders-of-magnitude gaps the paper's argument
rests on.
"""

from __future__ import annotations

from bench_utils import record_result
from repro.experiments import table1
from repro.perfmodel import NETBRICKS_SERVER, TOFINO


def test_table1_packet_processing_capabilities(benchmark):
    rows = benchmark.pedantic(table1, rounds=1, iterations=1)
    lines = [f"{'Device':<20} {'Packets per sec.':<18} {'Bandwidth':<12} {'Delay':<10}"]
    for name, pps, bandwidth, delay in rows:
        lines.append(f"{name:<20} {pps:<18} {bandwidth:<12} {delay:<10}")
    record_result("table1_devices", "Table 1: packet processing capabilities", lines)
    assert len(rows) == 2
    # Paper: switches process a few billion pps vs tens of millions on servers,
    # with sub-microsecond vs tens-of-microseconds delay.
    assert TOFINO.packets_per_sec / NETBRICKS_SERVER.packets_per_sec >= 100
    assert TOFINO.processing_delay < 1e-6 <= NETBRICKS_SERVER.processing_delay
