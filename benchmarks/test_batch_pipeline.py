"""Batched pipelined submission vs sequential synchronous driving.

The unified client's :class:`~repro.core.client.KVSession` issues a batch
of operations back-to-back with a configurable in-flight window, so the
client pays one round-trip of latency per *window* instead of one per
operation.  This benchmark drives the same read workload through the
sequential ``read_sync`` path and through batches at increasing windows
and reports completed queries per simulated second; the window-16 pipeline
must beat sequential driving by at least 2x (in practice it is close to
window x at these scales, since switch processing is deterministic and the
pipeline never drains).

The ``smoke`` marker in the name keeps this in the fast CI benchmark job.
"""

from __future__ import annotations

import pytest

from bench_utils import full_mode, record_result
from repro.deploy import DeploymentSpec, build_deployment

WINDOWS = (1, 4, 16, 64) if not full_mode() else (1, 2, 4, 8, 16, 32, 64, 128)
NUM_OPS = 256 if not full_mode() else 2048


def _sequential_qps(agent, keys) -> float:
    start = agent.sim.now
    for key in keys:
        result = agent.read_sync(key)
        assert result.ok
    elapsed = agent.sim.now - start
    return len(keys) / elapsed


def _batched_qps(agent, keys, window: int) -> float:
    session = agent.session(window=window)
    batch = session.batch()
    for key in keys:
        batch.read(key)
    start = agent.sim.now
    results = batch.results(deadline=30.0)
    elapsed = agent.sim.now - start
    assert all(r.ok for r in results)
    return len(keys) / elapsed


def run_comparison():
    deployment = build_deployment(DeploymentSpec(
        backend="netchain", scale=20000.0, store_size=NUM_OPS,
        store_slots=max(1024, NUM_OPS + 1024), unlimited_capacity=True))
    agent = deployment.cluster.agent("H0")
    keys = deployment.keys[:NUM_OPS]
    sequential = _sequential_qps(agent, keys)
    batched = {window: _batched_qps(agent, keys, window) for window in WINDOWS}
    return sequential, batched


def test_batch_pipeline_speedup_smoke(benchmark):
    sequential, batched = benchmark.pedantic(run_comparison, rounds=1, iterations=1)
    lines = [f"{'mode':>14} | {'queries/sim-second':>18} | {'speedup':>8}"]
    lines.append(f"{'sync loop':>14} | {sequential:>18.0f} | {1.0:>8.2f}")
    for window, qps in sorted(batched.items()):
        lines.append(f"{f'window {window}':>14} | {qps:>18.0f} | {qps / sequential:>8.2f}")
    record_result("batch_pipeline", "Batched pipelined submission vs sequential sync "
                                    f"({NUM_OPS} reads)", lines)

    # A window of 1 pipelines nothing: parity with the sync loop.
    assert batched[1] == pytest.approx(sequential, rel=0.25)
    # The acceptance bar: ≥2x at window 16 (in practice far higher).
    assert batched[16] >= 2.0 * sequential
    # Wider windows keep helping until the wire dominates.
    assert batched[16] > batched[4] > batched[1]
