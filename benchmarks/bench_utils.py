"""Helpers shared by the benchmark suite.

Every benchmark regenerates one table or figure of the paper's evaluation.
Because ``pytest-benchmark`` captures stdout, each benchmark also writes its
reproduced rows/series to ``benchmarks/results/<name>.txt`` so the numbers
survive a plain ``pytest benchmarks/ --benchmark-only`` run; EXPERIMENTS.md
summarizes them against the paper's reported values.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Iterable, List

RESULTS_DIR = Path(__file__).resolve().parent / "results"


def full_mode() -> bool:
    """Whether to run the slower, full-size parameter sweeps.

    Enabled by setting ``NETCHAIN_BENCH_FULL=1``; the default keeps the whole
    benchmark suite in the minutes range.
    """
    return os.environ.get("NETCHAIN_BENCH_FULL", "0") not in ("", "0")


def record_result(name: str, title: str, lines: Iterable[str]) -> List[str]:
    """Write a reproduced table/series to disk and echo it to stdout.

    Each result is stored twice: the human-readable text table (as always)
    and a machine-readable JSON document (``results/<name>.json``) so CI
    and tooling can consume figure benchmarks without parsing tables.
    """
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    body = list(lines)
    rows = [title] + body
    path = RESULTS_DIR / f"{name}.txt"
    path.write_text("\n".join(rows) + "\n", encoding="utf-8")
    json_path = RESULTS_DIR / f"{name}.json"
    json_path.write_text(
        json.dumps({"name": name, "title": title, "rows": body},
                   indent=2, sort_keys=True) + "\n",
        encoding="utf-8")
    print()
    for row in rows:
        print(row)
    return rows
