"""Eager validation of DeploymentSpec, ClusterConfig and backend checks."""

from __future__ import annotations

import pytest

from repro.core import ClusterConfig, NetChainCluster
from repro.deploy import DeploymentSpec, build_deployment, get_backend


# --------------------------------------------------------------------- #
# DeploymentSpec.validate().
# --------------------------------------------------------------------- #

def test_default_spec_is_valid():
    assert DeploymentSpec().validate() is not None


@pytest.mark.parametrize("field,value", [
    ("backend", ""),
    ("scale", 0.0),
    ("scale", -2.0),
    ("num_hosts", 0),
    ("replication", 0),
    ("vnodes_per_switch", 0),
    ("store_size", -1),
    ("value_size", -1),
    ("loss_rate", -0.1),
    ("loss_rate", 1.0),
    ("retry_timeout", 0.0),
])
def test_invalid_spec_fields_raise(field, value):
    with pytest.raises(ValueError):
        DeploymentSpec(**{field: value}).validate()


def test_store_slots_must_hold_store_size():
    with pytest.raises(ValueError, match="store_slots"):
        DeploymentSpec(store_size=100, store_slots=50).validate()


@pytest.mark.parametrize("event", [
    (0.5,),                  # no action
    (0.5, 42),               # non-string action
    (-1.0, "fail_switch"),   # negative time
])
def test_malformed_fault_events_raise(event):
    with pytest.raises(ValueError):
        DeploymentSpec(faults=[event]).validate()


def test_unknown_backend_error_names_registered_backends():
    with pytest.raises(ValueError, match="netchain"):
        build_deployment(DeploymentSpec(backend="nope"))


def test_with_backend_copies_the_spec():
    spec = DeploymentSpec(backend="netchain", store_size=12, seed=9)
    other = spec.with_backend("zookeeper")
    assert other.backend == "zookeeper"
    assert other.store_size == 12 and other.seed == 9
    assert spec.backend == "netchain"


def test_key_names_include_extra_keys():
    spec = DeploymentSpec(store_size=2, extra_keys=["lock:a"])
    assert spec.key_names() == ["k00000000", "k00000001", "lock:a"]


# --------------------------------------------------------------------- #
# ClusterConfig eager validation (satellite: fail at construction, not
# deep inside chain building).
# --------------------------------------------------------------------- #

@pytest.mark.parametrize("kwargs", [
    {"scale": 0.0},
    {"scale": -1.0},
    {"num_hosts": 0},
    {"replication": 0},
    {"vnodes_per_switch": 0},
    {"store_slots": 0},
    {"retry_timeout": 0.0},
    {"max_retries": -1},
])
def test_cluster_config_rejects_bad_values(kwargs):
    with pytest.raises(ValueError):
        ClusterConfig(**kwargs)


def test_replication_larger_than_member_count_raises_clearly():
    with pytest.raises(ValueError, match="member switches"):
        NetChainCluster(ClusterConfig(replication=5, store_slots=256,
                                      vnodes_per_switch=2))


def test_replication_larger_than_explicit_members_raises():
    from repro.netsim.topology import build_testbed
    with pytest.raises(ValueError, match="member switches"):
        NetChainCluster(ClusterConfig(replication=3, store_slots=256,
                                      vnodes_per_switch=2),
                        topology=build_testbed(num_hosts=2),
                        member_switches=["S0", "S1"])


# --------------------------------------------------------------------- #
# Backend-specific spec checks.
# --------------------------------------------------------------------- #

def test_netchain_backend_rejects_replication_beyond_testbed():
    with pytest.raises(ValueError, match="replication"):
        build_deployment(DeploymentSpec(backend="netchain", replication=5))


@pytest.mark.parametrize("backend", ["zookeeper", "server-chain", "primary-backup"])
def test_server_backends_require_a_client_host(backend):
    with pytest.raises(ValueError, match="client host"):
        build_deployment(DeploymentSpec(backend=backend, replication=4,
                                        num_hosts=4))


def test_hybrid_backend_rejects_bad_network_fraction():
    with pytest.raises(ValueError, match="network_fraction"):
        build_deployment(DeploymentSpec(backend="hybrid",
                                        options={"network_fraction": 1.5}))


def test_backend_check_runs_before_build():
    # get_backend exposes the registered singleton; its check must raise
    # without building anything.
    backend = get_backend("zookeeper")
    with pytest.raises(ValueError):
        backend.check(DeploymentSpec(backend="zookeeper", replication=9,
                                     num_hosts=4))
