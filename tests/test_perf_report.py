"""Tests for the perf-report harness and the benchmark comparison gate."""

from __future__ import annotations

import copy
import importlib.util
import json
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent


def _load(name: str):
    spec = importlib.util.spec_from_file_location(
        name, REPO_ROOT / "benchmarks" / f"{name}.py")
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


perf_report = _load("perf_report")
compare_bench = _load("compare_bench")


# --------------------------------------------------------------------- #
# perf_report: schema and determinism.
# --------------------------------------------------------------------- #

def test_calibration_counts_every_event():
    result = perf_report.calibrate(events=2000)
    assert result["events"] == 2000 + 64  # ladder + priming events
    assert result["events_per_sec"] > 0
    assert result["wall_clock_s"] > 0


def test_quick_report_matches_schema(tmp_path):
    report = perf_report.build_report(quick=True)
    assert report["schema"] == perf_report.SCHEMA
    for section in ("environment", "calibration", "macro", "macro_skewed",
                    "backends", "figures"):
        assert section in report, section
    macro = report["macro"]
    assert macro["backend"] == "netchain"
    assert macro["processed_events"] > 0
    assert macro["events_per_sec"] > 0
    assert macro["events_per_sec_calibrated"] > 0
    assert report["peak_rss_bytes"] > 0
    from repro.deploy import available_backends
    assert set(report["backends"]) == set(available_backends())
    for entry in report["figures"].values():
        assert entry["wall_clock_s"] > 0
        assert entry["calibrated_cost"] > 0
    # The report must round-trip through JSON (the artifact format).
    parsed = json.loads(json.dumps(report))
    assert parsed["schema"] == report["schema"]
    # Event counts are seeded and deterministic: a second quick run must
    # process the identical event stream.
    again = perf_report.build_report(quick=True)
    assert again["macro"]["processed_events"] == macro["processed_events"]
    assert again["macro"]["completed_ops"] == macro["completed_ops"]
    # The skewed macro is simulated end to end, so the speedup ratio is
    # seed-deterministic -- bit-equal across runs, not just close.
    skewed = report["macro_skewed"]
    assert skewed["tier_speedup_sim_qps"] > 1.0
    assert again["macro_skewed"]["tier_speedup_sim_qps"] == \
        skewed["tier_speedup_sim_qps"]
    for mode in ("tier_off", "tier_on"):
        assert skewed[mode]["processed_events"] > 0
        assert again["macro_skewed"][mode]["processed_events"] == \
            skewed[mode]["processed_events"]


def test_committed_baseline_is_a_valid_report():
    baseline = json.loads(
        (REPO_ROOT / "benchmarks" / "baseline.json").read_text())
    assert baseline["schema"] == perf_report.SCHEMA
    assert baseline["macro"]["events_per_sec"] > 0
    assert set(baseline["backends"])  # non-empty


def test_summary_renders_every_backend():
    baseline = json.loads(
        (REPO_ROOT / "benchmarks" / "baseline.json").read_text())
    summary = perf_report.summarize(baseline)
    for name in baseline["backends"]:
        assert name in summary


# --------------------------------------------------------------------- #
# compare_bench: the regression gate.
# --------------------------------------------------------------------- #

def _tiny_report() -> dict:
    return {
        "schema": compare_bench.SCHEMA,
        "macro": {"events_per_sec": 1000.0, "events_per_sec_calibrated": 0.5},
        "backends": {
            "netchain": {"events_per_sec": 1000.0,
                         "events_per_sec_calibrated": 0.5,
                         "wall_clock_s": 1.0},
        },
        "figures": {
            "fig9a": {"wall_clock_s": 2.0, "calibrated_cost": 4000.0},
        },
        "peak_rss_bytes": 100.0,
    }


def test_identical_reports_pass():
    report = _tiny_report()
    cmp = compare_bench.compare(report, copy.deepcopy(report), tolerance=0.15)
    assert not cmp.regressions


def test_regression_beyond_tolerance_fails():
    old, new = _tiny_report(), _tiny_report()
    new["macro"]["events_per_sec_calibrated"] = 0.4   # -20%
    cmp = compare_bench.compare(old, new, tolerance=0.15)
    assert "macro.events_per_sec_calibrated" in cmp.regressions


def test_regression_within_tolerance_passes():
    old, new = _tiny_report(), _tiny_report()
    new["macro"]["events_per_sec_calibrated"] = 0.45  # -10%
    cmp = compare_bench.compare(old, new, tolerance=0.15)
    assert not cmp.regressions


def test_cost_metrics_regress_when_they_grow():
    old, new = _tiny_report(), _tiny_report()
    new["figures"]["fig9a"]["calibrated_cost"] = 6000.0  # +50% cost
    new["peak_rss_bytes"] = 200.0                        # double the memory
    cmp = compare_bench.compare(old, new, tolerance=0.15)
    assert "figures.fig9a.calibrated_cost" in cmp.regressions
    # RSS is allocator/machine-dependent: informational by default, gated
    # only for same-machine (--raw) comparisons.
    assert "peak_rss_bytes" not in cmp.regressions
    raw = compare_bench.compare(old, new, tolerance=0.15, include_raw=True)
    assert "peak_rss_bytes" in raw.regressions


def test_improvements_never_fail():
    old, new = _tiny_report(), _tiny_report()
    new["macro"]["events_per_sec_calibrated"] = 5.0
    new["figures"]["fig9a"]["calibrated_cost"] = 1.0
    cmp = compare_bench.compare(old, new, tolerance=0.15)
    assert not cmp.regressions


def test_sub_threshold_measurements_are_not_gated():
    """A 10ms scenario is timing noise; it must inform, never fail."""
    old, new = _tiny_report(), _tiny_report()
    for report in (old, new):
        report["backends"]["netchain"]["wall_clock_s"] = 0.01
    new["backends"]["netchain"]["events_per_sec_calibrated"] = 0.1  # -80%
    cmp = compare_bench.compare(old, new, tolerance=0.15)
    assert not cmp.regressions


def test_backend_regression_with_solid_wall_clock_fails():
    old, new = _tiny_report(), _tiny_report()
    new["backends"]["netchain"]["events_per_sec_calibrated"] = 0.1
    cmp = compare_bench.compare(old, new, tolerance=0.15)
    assert "backends.netchain.events_per_sec_calibrated" in cmp.regressions


def test_missing_skewed_section_is_tolerated():
    # Reports predating the hot-key tier have no macro_skewed section;
    # the gate must compare what both reports carry and pass.
    old, new = _tiny_report(), _tiny_report()
    new["macro_skewed"] = {
        "tier_off": {"events_per_sec_calibrated": 0.5, "wall_clock_s": 1.0},
        "tier_on": {"events_per_sec_calibrated": 0.5, "wall_clock_s": 1.0},
        "tier_speedup_sim_qps": 2.5,
    }
    cmp = compare_bench.compare(old, new, tolerance=0.15)
    assert not cmp.regressions


def test_skewed_speedup_regression_fails():
    old, new = _tiny_report(), _tiny_report()
    for report in (old, new):
        report["macro_skewed"] = {
            "tier_off": {"events_per_sec_calibrated": 0.5, "wall_clock_s": 1.0},
            "tier_on": {"events_per_sec_calibrated": 0.5, "wall_clock_s": 1.0},
            "tier_speedup_sim_qps": 2.5,
        }
    new["macro_skewed"]["tier_speedup_sim_qps"] = 1.2  # tier got less effective
    cmp = compare_bench.compare(old, new, tolerance=0.15)
    assert "macro_skewed.tier_speedup_sim_qps" in cmp.regressions
    new["macro_skewed"]["tier_on"]["events_per_sec_calibrated"] = 0.1  # -80%
    cmp = compare_bench.compare(old, new, tolerance=0.15)
    assert "macro_skewed.tier_on.events_per_sec_calibrated" in cmp.regressions


def test_raw_metrics_gated_only_with_flag():
    old, new = _tiny_report(), _tiny_report()
    new["macro"]["events_per_sec"] = 100.0  # -90% raw
    assert not compare_bench.compare(old, new, tolerance=0.15).regressions
    gated = compare_bench.compare(old, new, tolerance=0.15, include_raw=True)
    assert "macro.events_per_sec" in gated.regressions


def test_cli_exit_codes(tmp_path):
    old, new = _tiny_report(), _tiny_report()
    new["macro"]["events_per_sec_calibrated"] = 0.1
    old_path = tmp_path / "old.json"
    new_path = tmp_path / "new.json"
    old_path.write_text(json.dumps(old))
    new_path.write_text(json.dumps(new))
    ok = subprocess.run(
        [sys.executable, str(REPO_ROOT / "benchmarks" / "compare_bench.py"),
         str(old_path), str(old_path)], capture_output=True)
    assert ok.returncode == 0
    fail = subprocess.run(
        [sys.executable, str(REPO_ROOT / "benchmarks" / "compare_bench.py"),
         str(old_path), str(new_path)], capture_output=True)
    assert fail.returncode == 1


def test_schema_mismatch_is_rejected(tmp_path):
    bogus = tmp_path / "bogus.json"
    bogus.write_text(json.dumps({"schema": "something-else/v9"}))
    import pytest
    with pytest.raises(SystemExit):
        compare_bench.load_report(str(bogus))
