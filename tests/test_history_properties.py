"""Property tests: streaming checker ≡ in-memory checker ≡ brute force.

Three independent implementations must agree on every history:

* :func:`repro.core.history.check_linearizable` -- the memoized Wing &
  Gong DFS over in-memory per-key lists;
* :func:`repro.core.history_store.check_linearizable_streaming` -- the
  same per-key search driven over spilled NDJSON per-key streams;
* a brute-force permutation search (below) with no memoization and no
  pruning, feasible for tiny histories.

Histories come from the seeded generator
(:mod:`repro.core.history_gen`), which produces concurrent histories that
are linearizable by construction -- and, with ``corruption_rate``, flips
read outputs so exactly the corrupted keys must be rejected.  That gives
each comparison a known ground truth rather than just mutual agreement.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import pytest

from repro.core.history import (
    MISSING,
    HistoryOp,
    _step,
    _step_ambiguous_success,
    check_linearizable,
    group_ops_by_key,
)
from repro.core.history_gen import generate_history
from repro.core.history_store import HistoryStore, HistoryWriter, check_linearizable_streaming

_FAIL = _step(HistoryOp(op_id=0, client="", op="read", key=b"", ok=True,
                        output=b"x", returned_at=1.0), MISSING)


def brute_force_key_ok(ops: List[HistoryOp], initial: Optional[bytes],
                       ) -> bool:
    """Exhaustive linearization search for one key's tiny history.

    Mirrors the checker's semantics for non-retried histories: certain
    operations apply exactly once in an order respecting real-time
    precedence; ambiguous (lost-reply) reads constrain nothing; ambiguous
    writes may apply any number of times (capped at ``n + 1`` -- more
    applications than distinct intervening states cannot matter);
    ambiguous CAS/delete/insert apply at most once, and a CAS only from a
    matching state.  No Lowe memoization of the *search order*, no
    relevance pruning -- only a visited set over exact configurations so
    revisiting the identical (state, remaining, counts) triple is not
    re-explored, which changes nothing about what is searched.  Feasible
    only because the histories are <= 7 operations.
    """
    assert all(op.retries == 0 for op in ops), \
        "echo semantics are out of scope for the brute-force model"
    certain = [op for op in ops if not op.ambiguous]
    ambiguous = [op for op in ops if op.ambiguous and op.op != "read"]
    budget = len(ops) + 1
    visited = set()

    def horizon(remaining: Tuple[int, ...]) -> float:
        return min((certain[i].returned_at for i in remaining),
                   default=float("inf"))

    def search(state, remaining: Tuple[int, ...],
               amb_counts: Tuple[int, ...]) -> bool:
        if not remaining:
            return True
        marker = (state, remaining, amb_counts)
        if marker in visited:
            return False
        visited.add(marker)
        limit = horizon(remaining)
        for i in remaining:
            if certain[i].invoked_at <= limit:
                stepped = _step(certain[i], state)
                if stepped is not _FAIL and search(
                        stepped, tuple(j for j in remaining if j != i),
                        amb_counts):
                    return True
        for j, count in enumerate(amb_counts):
            if count == 0 or ambiguous[j].invoked_at > limit:
                continue
            applied = _step_ambiguous_success(ambiguous[j], state)
            if applied is _FAIL:
                continue
            next_counts = tuple(
                (count - 1 if k == j else c)
                if ambiguous[k].op in ("write", "insert") else
                (0 if k == j else c)
                for k, c in enumerate(amb_counts))
            if search(applied, remaining, next_counts):
                return True
        return False

    return search(initial, tuple(range(len(certain))),
                  tuple(budget for _ in ambiguous))


def spill(tmp_path, ops, tag: str) -> HistoryStore:
    run_dir = tmp_path / tag
    with HistoryWriter(run_dir) as writer:
        for op in ops:
            writer.append(op)
    return HistoryStore(run_dir)


# Seed ranges per regime: 300 clean + 120 corrupted + 80 timeout-heavy =
# 500 randomized histories, every one checked by both implementations.
REGIMES = [
    ("clean", range(0, 300),
     dict(clients=3, keys=3, ops=40, timeout_rate=0.05)),
    ("corrupted", range(1000, 1120),
     dict(clients=3, keys=3, ops=40, timeout_rate=0.05,
          corruption_rate=0.08)),
    ("timeout-heavy", range(2000, 2080),
     dict(clients=4, keys=2, ops=30, timeout_rate=0.35)),
]


@pytest.mark.parametrize("name,seeds,params", REGIMES,
                         ids=[regime[0] for regime in REGIMES])
def test_streaming_equals_memory_on_generated_histories(
        name, seeds, params, tmp_path):
    mismatches = []
    for seed in seeds:
        gen = generate_history(seed, **params)
        memory = check_linearizable(gen.ops, initial=gen.initial)
        store = spill(tmp_path, gen.ops, f"s{seed}")
        streaming = check_linearizable_streaming(store, initial=gen.initial)
        if memory.ok != streaming.ok or \
                {k: r.ok for k, r in memory.keys.items()} != \
                {k: r.ok for k, r in streaming.keys.items()}:
            mismatches.append(seed)
            continue
        # Ground truth: exactly the corrupted keys violate.
        flagged = sorted(k for k, r in memory.keys.items() if not r.ok)
        if flagged != sorted(gen.corrupted_keys):
            mismatches.append(seed)
        assert not memory.exhausted_keys()
    assert not mismatches, \
        f"{name}: checkers disagree (or miss ground truth) on seeds {mismatches}"


def test_total_property_histories_at_least_500():
    assert sum(len(regime[1]) for regime in REGIMES) >= 500


@pytest.mark.parametrize("regime,seeds,corruption", [
    ("tiny-clean", range(3000, 3250), 0.0),
    ("tiny-corrupted", range(4000, 4150), 0.25),
], ids=["tiny-clean", "tiny-corrupted"])
def test_brute_force_agrees_on_tiny_histories(regime, seeds, corruption):
    """<= 7-op histories: the memoized DFS must match pure permutation
    search key for key (retry echoes excluded -- the generator emits
    ``retries=0`` only; the golden corpus covers echoes)."""
    checked = 0
    for seed in seeds:
        ops_count = 2 + seed % 6  # 2..7 operations
        gen = generate_history(seed, clients=2, keys=1 + seed % 2,
                               ops=ops_count, timeout_rate=0.3,
                               corruption_rate=corruption)
        report = check_linearizable(gen.ops, initial=gen.initial)
        for key, key_ops in group_ops_by_key(gen.ops).items():
            expected = brute_force_key_ok(key_ops, gen.initial.get(key, MISSING))
            assert report.keys[key].ok == expected, \
                (f"{regime} seed {seed} key {key!r}: DFS said "
                 f"{report.keys[key].ok}, brute force said {expected}:\n"
                 + "\n".join(op.describe() for op in key_ops))
            checked += 1
    assert checked > len(seeds)  # multiple keys actually exercised
