"""End-to-end consistency tests on the simulated testbed.

These integration tests exercise the full stack -- agents, chain routing,
the switch programs, the underlay and the controller -- under the adverse
conditions the protocol is designed for: concurrent writers, packet loss,
reordering, and switch failures.  After every scenario the paper's
invariants must hold (Section 4.5 and the TLA+ appendix).
"""

from __future__ import annotations

import random

from repro.core.invariants import (
    ClientObservationChecker,
    check_chain_invariant,
    check_value_agreement,
)
from repro.netsim.link import LinkConfig
from tests.conftest import make_cluster


def chain_stores(controller, key, include_failed=False):
    info = controller.chain_for_key(key)
    return [controller.stores[name] for name in info.switches
            if include_failed or name not in controller.failed_switches]


def assert_invariants(cluster, keys):
    controller = cluster.controller
    for key in keys:
        stores = chain_stores(controller, key)
        check_chain_invariant(stores, [key])
        check_value_agreement(stores, [key])


def test_concurrent_writers_serialize_on_every_replica(cluster):
    keys = ["shared"]
    cluster.controller.populate(keys)
    agents = cluster.agent_list()
    results = []
    for i in range(20):
        agent = agents[i % len(agents)]
        agent.write(keys[0], f"value-{i}").then(results.append)
    cluster.run(until=cluster.sim.now + 0.05)
    assert len(results) == 20
    assert all(r.ok for r in results)
    # All replicas converge to the same value and version.
    stores = chain_stores(cluster.controller, keys[0])
    versions = {store.read(keys[0]).version() for store in stores}
    values = {store.read(keys[0]).value for store in stores}
    assert len(versions) == 1
    assert len(values) == 1
    assert_invariants(cluster, keys)


def test_reordering_links_do_not_break_consistency():
    """The Figure 5 problem: reordered writes between chain switches."""
    cluster = make_cluster()
    # Inject heavy reordering jitter on every link.
    for link in cluster.topology.links:
        link.config = LinkConfig(delay=200e-9, reorder_jitter=30e-6)
    keys = [f"key{i}" for i in range(5)]
    cluster.controller.populate(keys)
    agents = cluster.agent_list()
    done = []
    rng = random.Random(0)
    for i in range(120):
        agent = agents[rng.randrange(len(agents))]
        agent.write(rng.choice(keys), f"v{i}").then(done.append)
    cluster.run(until=cluster.sim.now + 0.2)
    assert len(done) == 120
    assert_invariants(cluster, keys)
    checker = ClientObservationChecker()
    reader = cluster.agent("H0")
    for key in keys:
        checker.observe_result(reader.read_sync(key))
    assert checker.ok()


def test_loss_and_retries_preserve_invariants(cluster):
    keys = [f"key{i}" for i in range(5)]
    cluster.controller.populate(keys)
    cluster.topology.set_loss_rate(0.15)
    agent = cluster.agent("H0")
    for i in range(40):
        agent.write_sync(keys[i % len(keys)], f"v{i}", deadline=10.0)
    assert_invariants(cluster, keys)


def test_client_observations_monotonic_across_failover(cluster):
    keys = [f"key{i}" for i in range(8)]
    cluster.controller.populate(keys)
    agent = cluster.agent("H0")
    checker = ClientObservationChecker()
    for i, key in enumerate(keys):
        checker.observe_result(agent.write_sync(key, f"before-{i}"))
        checker.observe_result(agent.read_sync(key))
    # Fail the middle switch of the canonical chain and fail over.
    cluster.topology.switches["S1"].fail()
    cluster.controller.fast_failover("S1")
    cluster.run(until=cluster.sim.now + 0.1)
    for i, key in enumerate(keys):
        checker.observe_result(agent.write_sync(key, f"after-{i}", deadline=10.0))
        result = agent.read_sync(key, deadline=10.0)
        checker.observe_result(result)
        assert result.value == f"after-{i}".encode()
    assert checker.ok()
    assert_invariants(cluster, keys)


def test_full_failure_recovery_preserves_data_and_order(cluster):
    keys = [f"key{i}" for i in range(30)]
    cluster.controller.populate(keys)
    agent = cluster.agent("H0")
    for key in keys:
        agent.write_sync(key, f"gen1-{key}")
    cluster.topology.switches["S1"].fail()
    cluster.controller.fast_failover("S1")
    cluster.controller.failure_recovery("S1", new_switch="S3")
    cluster.run(until=cluster.sim.now + 60.0)
    # Every key is durable, writable, and its chain invariant holds.
    checker = ClientObservationChecker()
    for key in keys:
        result = agent.read_sync(key, deadline=10.0)
        assert result.value == f"gen1-{key}".encode()
        checker.observe_result(result)
        agent.write_sync(key, f"gen2-{key}", deadline=10.0)
        result = agent.read_sync(key, deadline=10.0)
        assert result.value == f"gen2-{key}".encode()
        checker.observe_result(result)
    assert checker.ok()
    assert_invariants(cluster, keys)


def test_writes_survive_when_any_single_switch_fails():
    """f+1 = 3 chains tolerate any single switch failure (after failover)."""
    for victim in ("S1", "S2", "S3"):
        cluster = make_cluster()
        keys = [f"key{i}" for i in range(10)]
        cluster.controller.populate(keys)
        agent = cluster.agent("H0")
        cluster.topology.switches[victim].fail()
        cluster.controller.fast_failover(victim)
        cluster.run(until=cluster.sim.now + 0.1)
        for key in keys:
            assert agent.write_sync(key, b"post-failure", deadline=10.0).ok
            assert agent.read_sync(key, deadline=10.0).value == b"post-failure"
        assert_invariants(cluster, keys)


def test_read_your_writes_from_same_client(cluster):
    cluster.controller.populate(["x"])
    agent = cluster.agent("H0")
    for i in range(10):
        agent.write_sync("x", f"v{i}")
        assert agent.read_sync("x").value == f"v{i}".encode()
