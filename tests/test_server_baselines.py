"""Tests for the server-hosted chain replication and primary-backup baselines."""

from __future__ import annotations

import pytest

from repro.baselines import PrimaryBackupCluster, ServerChainCluster
from repro.netsim.host import HostConfig
from repro.netsim.routing import install_shortest_path_routes
from repro.netsim.topology import build_testbed


def make_hosts(n=4):
    topo = build_testbed(host_config=HostConfig(stack_delay=5e-6, nic_pps=None),
                         num_hosts=n)
    install_shortest_path_routes(topo)
    return topo, [topo.hosts[f"H{i}"] for i in range(n)]


# --------------------------------------------------------------------- #
# Server chain replication.
# --------------------------------------------------------------------- #

def test_chain_write_read_roundtrip():
    topo, hosts = make_hosts()
    cluster = ServerChainCluster(hosts[:3])
    client = cluster.client(hosts[3])
    assert client.write("k", b"v1").ok
    assert client.read("k").value == b"v1"


def test_chain_write_applies_on_every_replica():
    topo, hosts = make_hosts()
    cluster = ServerChainCluster(hosts[:3])
    client = cluster.client(hosts[3])
    client.write("k", b"v1")
    for replica in cluster.replicas:
        assert replica.store["k"][0] == b"v1"


def test_chain_versions_increase():
    topo, hosts = make_hosts()
    cluster = ServerChainCluster(hosts[:3])
    client = cluster.client(hosts[3])
    versions = [client.write("k", f"v{i}".encode()).version for i in range(3)]
    assert versions == [1, 2, 3]


def test_chain_read_of_missing_key_returns_empty():
    topo, hosts = make_hosts()
    cluster = ServerChainCluster(hosts[:3])
    client = cluster.client(hosts[3])
    result = client.read("absent")
    assert result.ok and result.value == b""


def test_chain_message_count_is_n_plus_one():
    topo, hosts = make_hosts()
    assert ServerChainCluster(hosts[:3]).messages_per_write() == 4
    assert ServerChainCluster(hosts[:2]).messages_per_write() == 3


def test_single_node_chain_works():
    topo, hosts = make_hosts()
    cluster = ServerChainCluster(hosts[:1])
    client = cluster.client(hosts[3])
    assert client.write("k", b"x").ok
    assert client.read("k").value == b"x"


def test_chain_requires_servers():
    with pytest.raises(ValueError):
        ServerChainCluster([])


# --------------------------------------------------------------------- #
# Primary-backup.
# --------------------------------------------------------------------- #

def test_pb_write_read_roundtrip():
    topo, hosts = make_hosts()
    cluster = PrimaryBackupCluster(hosts[:3])
    client = cluster.client(hosts[3])
    assert client.write("k", b"v1").ok
    assert client.read("k").value == b"v1"


def test_pb_write_waits_for_all_backups():
    topo, hosts = make_hosts()
    cluster = PrimaryBackupCluster(hosts[:3])
    client = cluster.client(hosts[3])
    client.write("k", b"v1")
    for backup in cluster.backups:
        assert backup.store["k"][0] == b"v1"
        assert backup.updates_applied == 1
    assert not cluster.primary.pending_writes


def test_pb_message_count_is_two_n():
    topo, hosts = make_hosts()
    assert PrimaryBackupCluster(hosts[:3]).messages_per_write() == 6
    assert PrimaryBackupCluster(hosts[:1]).messages_per_write() == 2


def test_pb_requires_servers():
    with pytest.raises(ValueError):
        PrimaryBackupCluster([])


def test_chain_uses_fewer_messages_than_primary_backup():
    """Section 2.2: n+1 for chain replication versus 2n for primary-backup."""
    topo, hosts = make_hosts()
    chain = ServerChainCluster(hosts[:3])
    pb = PrimaryBackupCluster(hosts[:3])
    assert chain.messages_per_write() < pb.messages_per_write()
