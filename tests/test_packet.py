"""Unit tests for the packet model and header encodings."""

from __future__ import annotations

from repro.netsim.packet import (
    JUMBO_FRAME_BYTES,
    EthernetHeader,
    IPv4Header,
    Packet,
    UDPHeader,
    int_to_ip,
    ip_to_int,
)


def test_ip_int_roundtrip():
    for addr in ("10.0.0.1", "192.168.1.255", "0.0.0.0", "255.255.255.255"):
        assert int_to_ip(ip_to_int(addr)) == addr


def test_ethernet_header_roundtrip():
    header = EthernetHeader(src_mac="02:00:00:00:00:01", dst_mac="02:00:00:00:00:02",
                            ethertype=0x0800)
    data = header.to_bytes()
    assert len(data) == EthernetHeader.HEADER_BYTES
    decoded = EthernetHeader.from_bytes(data)
    assert decoded.src_mac == header.src_mac
    assert decoded.dst_mac == header.dst_mac
    assert decoded.ethertype == header.ethertype


def test_ipv4_header_roundtrip():
    header = IPv4Header(src_ip="10.1.0.1", dst_ip="10.0.0.3", ttl=17)
    decoded = IPv4Header.from_bytes(header.to_bytes())
    assert decoded.src_ip == header.src_ip
    assert decoded.dst_ip == header.dst_ip
    assert decoded.ttl == header.ttl
    assert decoded.protocol == 17


def test_udp_header_roundtrip():
    header = UDPHeader(src_port=9000, dst_port=8123, length=64)
    decoded = UDPHeader.from_bytes(header.to_bytes())
    assert decoded.src_port == 9000
    assert decoded.dst_port == 8123
    assert decoded.length == 64


def test_packet_size_includes_all_headers():
    packet = Packet(udp=UDPHeader(), payload_bytes=100)
    expected = (EthernetHeader.HEADER_BYTES + IPv4Header.HEADER_BYTES
                + UDPHeader.HEADER_BYTES + 100)
    assert packet.size_bytes() == expected


def test_packet_without_udp_is_smaller():
    with_udp = Packet(udp=UDPHeader(), payload_bytes=0)
    without_udp = Packet(payload_bytes=0)
    assert with_udp.size_bytes() - without_udp.size_bytes() == UDPHeader.HEADER_BYTES


def test_jumbo_frame_limit():
    small = Packet(udp=UDPHeader(), payload_bytes=1000)
    huge = Packet(udp=UDPHeader(), payload_bytes=JUMBO_FRAME_BYTES)
    assert small.fits_in_jumbo_frame()
    assert not huge.fits_in_jumbo_frame()


def test_packet_ids_are_unique():
    ids = {Packet().packet_id for _ in range(100)}
    assert len(ids) == 100


def test_packet_copy_gets_fresh_identity_and_headers():
    packet = Packet(udp=UDPHeader(src_port=1, dst_port=2), payload_bytes=10)
    packet.ip.dst_ip = "10.0.0.9"
    clone = packet.copy()
    assert clone.packet_id != packet.packet_id
    clone.ip.dst_ip = "10.0.0.1"
    clone.udp.dst_port = 99
    assert packet.ip.dst_ip == "10.0.0.9"
    assert packet.udp.dst_port == 2


def test_packet_copy_copies_payload_when_supported():
    class Payload:
        def __init__(self):
            self.copied = False

        def copy(self):
            other = Payload()
            other.copied = True
            return other

    packet = Packet(payload=Payload())
    clone = packet.copy()
    assert clone.payload.copied
    assert not packet.payload.copied
