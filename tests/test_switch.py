"""Unit tests for the programmable switch model, tables and registers."""

from __future__ import annotations

import pytest

from repro.netsim.engine import Simulator
from repro.netsim.link import connect
from repro.netsim.node import Node
from repro.netsim.packet import Packet
from repro.netsim.registers import RegisterAllocationError, RegisterFile
from repro.netsim.switch import PipelineAction, PipelineProgram, Switch, SwitchConfig
from repro.netsim.tables import MatchTable, TableFullError


class Sink(Node):
    def __init__(self, sim, name, ip="10.9.9.9"):
        super().__init__(sim, name, ip)
        self.received = []

    def receive(self, packet, port):
        self.received.append(packet)


def make_switch(config=None):
    sim = Simulator()
    switch = Switch(sim, "S0", "10.0.0.1", config=config)
    sink = Sink(sim, "H", "10.1.0.1")
    connect(sim, switch, sink)
    switch.forwarding_table[sink.ip] = switch.port_to(sink)
    return sim, switch, sink


def packet_to(ip):
    packet = Packet()
    packet.ip.dst_ip = ip
    packet.ip.src_ip = "10.1.0.1"
    return packet


# --------------------------------------------------------------------- #
# Forwarding.
# --------------------------------------------------------------------- #

def test_forwards_on_destination_ip():
    sim, switch, sink = make_switch()
    switch.deliver(packet_to(sink.ip), list(switch.ports.values())[0])
    sim.run()
    assert len(sink.received) == 1


def test_drops_without_route():
    sim, switch, sink = make_switch()
    switch.deliver(packet_to("10.5.5.5"), list(switch.ports.values())[0])
    sim.run()
    assert sink.received == []
    assert switch.dropped_no_route == 1


def test_ttl_decrement_and_expiry():
    sim, switch, sink = make_switch()
    packet = packet_to(sink.ip)
    packet.ip.ttl = 1
    switch.deliver(packet, list(switch.ports.values())[0])
    sim.run()
    assert sink.received == []


def test_packet_to_switch_itself_goes_to_control_agent():
    sim, switch, sink = make_switch()
    captured = []
    switch.control_agent = lambda packet, port: captured.append(packet)
    switch.deliver(packet_to(switch.ip), list(switch.ports.values())[0])
    sim.run()
    assert len(captured) == 1


def test_pipeline_delay_applied():
    sim, switch, sink = make_switch(SwitchConfig(capacity_pps=None, pipeline_delay=2e-6))
    switch.deliver(packet_to(sink.ip), list(switch.ports.values())[0])
    sim.run()
    assert sim.now >= 2e-6


def test_failed_switch_drops_everything():
    sim, switch, sink = make_switch()
    switch.fail()
    switch.deliver(packet_to(sink.ip), list(switch.ports.values())[0])
    sim.run()
    assert sink.received == []
    switch.recover_device()
    switch.deliver(packet_to(sink.ip), list(switch.ports.values())[0])
    sim.run()
    assert len(sink.received) == 1


def test_injected_loss_drops_fraction():
    sim, switch, sink = make_switch()
    switch.injected_loss_rate = 1.0
    switch.deliver(packet_to(sink.ip), list(switch.ports.values())[0])
    sim.run()
    assert sink.received == []
    assert switch.dropped_injected == 1


# --------------------------------------------------------------------- #
# Capacity model.
# --------------------------------------------------------------------- #

def test_capacity_queue_drops_when_full():
    config = SwitchConfig(capacity_pps=1000.0, ingress_queue_packets=5)
    sim, switch, sink = make_switch(config)
    port = list(switch.ports.values())[0]
    for _ in range(20):
        switch.deliver(packet_to(sink.ip), port)
    sim.run()
    assert switch.dropped_capacity > 0
    assert len(sink.received) < 20


def test_capacity_limits_throughput():
    config = SwitchConfig(capacity_pps=1000.0, ingress_queue_packets=100000)
    sim, switch, sink = make_switch(config)
    port = list(switch.ports.values())[0]

    def offer():
        switch.deliver(packet_to(sink.ip), port)

    # Offer 5000 pps for one second against a 1000 pps switch.
    for i in range(5000):
        sim.schedule(i * 0.0002, offer)
    sim.run(until=1.0)
    assert len(sink.received) <= 1100


def test_pipeline_pass_counting():
    sim, switch, sink = make_switch()
    port = list(switch.ports.values())[0]
    switch.deliver(packet_to(sink.ip), port)
    sim.run()
    assert switch.pipeline_passes == 1


def test_charge_extra_passes_consumes_capacity():
    config = SwitchConfig(capacity_pps=1000.0)
    sim, switch, sink = make_switch(config)
    switch.charge_extra_passes(10)
    assert switch.pipeline_passes == 10
    assert switch._busy_until == pytest.approx(10 / 1000.0)


# --------------------------------------------------------------------- #
# Pipeline programs.
# --------------------------------------------------------------------- #

class DropAll(PipelineProgram):
    def process(self, switch, packet, in_port):
        return PipelineAction.DROP


class Rewrite(PipelineProgram):
    def __init__(self, new_dst):
        self.new_dst = new_dst

    def process(self, switch, packet, in_port):
        packet.ip.dst_ip = self.new_dst
        return PipelineAction.FORWARD


def test_program_can_drop():
    sim, switch, sink = make_switch()
    switch.install_program(DropAll())
    switch.deliver(packet_to(sink.ip), list(switch.ports.values())[0])
    sim.run()
    assert sink.received == []
    assert switch.dropped_by_program == 1


def test_program_can_rewrite_and_forward():
    sim, switch, sink = make_switch()
    switch.install_program(Rewrite(sink.ip))
    switch.deliver(packet_to("10.77.0.1"), list(switch.ports.values())[0])
    sim.run()
    assert len(sink.received) == 1


def test_max_value_bytes_per_pass():
    switch = Switch(Simulator(), "S", "10.0.0.1",
                    config=SwitchConfig(value_stages=8, stage_value_bytes=16))
    assert switch.max_value_bytes_per_pass() == 128


# --------------------------------------------------------------------- #
# Match tables.
# --------------------------------------------------------------------- #

def test_match_table_insert_lookup_remove():
    table = MatchTable("t")
    entry = table.insert("key", lambda: 1, loc=1)
    assert table.lookup("key") is entry
    assert table.lookup("missing") is None
    assert table.remove(entry)
    assert not table.remove(entry)
    assert table.lookup("key") is None


def test_match_table_priority_wins():
    table = MatchTable("t")
    table.insert("x", lambda: "low", priority=1, tag="low")
    high = table.insert("x", lambda: "high", priority=10, tag="high")
    assert table.lookup("x") is high


def test_match_table_capacity():
    table = MatchTable("t", max_entries=2)
    table.insert("a", lambda: 1)
    table.insert("b", lambda: 2)
    with pytest.raises(TableFullError):
        table.insert("c", lambda: 3)
    assert len(table) == 2
    table.clear()
    assert len(table) == 0


def test_match_table_remove_match():
    table = MatchTable("t")
    table.insert("a", lambda: 1)
    table.insert("a", lambda: 2, priority=5)
    assert table.remove_match("a") == 2
    assert len(table) == 0


# --------------------------------------------------------------------- #
# Register arrays.
# --------------------------------------------------------------------- #

def test_register_allocation_and_budget():
    registers = RegisterFile(sram_bytes=1000)
    array = registers.allocate("a", slots=10, bytes_per_slot=16)
    assert array.size_bytes() == 160
    assert registers.allocated_bytes() == 160
    with pytest.raises(RegisterAllocationError):
        registers.allocate("b", slots=100, bytes_per_slot=16)
    registers.free("a")
    assert registers.allocated_bytes() == 0


def test_register_duplicate_name_rejected():
    registers = RegisterFile()
    registers.allocate("a", 4, 4)
    with pytest.raises(ValueError):
        registers.allocate("a", 4, 4)


def test_register_read_write_snapshot_load():
    registers = RegisterFile()
    array = registers.allocate("vals", slots=4, bytes_per_slot=8, initial=0)
    array.write(2, 42)
    assert array.read(2) == 42
    snapshot = array.snapshot()
    array.fill(0)
    assert array.read(2) == 0
    array.load(snapshot)
    assert array.read(2) == 42
    with pytest.raises(ValueError):
        array.load([1, 2])
    assert len(array) == 4
