"""Tests for the unified KVClient protocol: futures, sessions, batches.

The backend matrix is the point: every behavioural test here runs against
both the NetChain agent and the ZooKeeper adapter through the exact same
code path, which is what the protocol exists to guarantee.
"""

from __future__ import annotations

import pytest

from repro.apps.transactions import TransactionClient, TransactionWorkloadConfig
from repro.baselines import (
    ZooKeeperClient,
    ZooKeeperConfig,
    ZooKeeperKVClient,
    build_zookeeper_ensemble,
)
from repro.core.client import KVFuture, KVSession, KVTimeout, first, gather
from repro.core.coordination import Barrier, DistributedLock
from repro.netsim.engine import Simulator
from repro.netsim.host import HostConfig
from repro.netsim.routing import install_shortest_path_routes
from repro.netsim.topology import build_testbed
from repro.workloads import KeyValueWorkload, LoadClient, WorkloadConfig, measure_load
from tests.conftest import make_cluster


class _Backend:
    """One backend under test: a factory of KVClients over shared state."""

    def __init__(self, name, make_client, prepare_keys, sim):
        self.name = name
        self.make_client = make_client
        self.prepare_keys = prepare_keys
        self.sim = sim


def _netchain_backend() -> _Backend:
    cluster = make_cluster()

    def make_client(index: int = 0):
        return cluster.agent(f"H{index % len(cluster.agents)}")

    def prepare_keys(keys):
        cluster.controller.populate(list(keys))

    return _Backend("netchain", make_client, prepare_keys, cluster.sim)


def _zookeeper_backend() -> _Backend:
    topology = build_testbed(host_config=HostConfig(stack_delay=40e-6, nic_pps=None))
    install_shortest_path_routes(topology)
    hosts = [topology.hosts[f"H{i}"] for i in range(4)]
    ensemble = build_zookeeper_ensemble(hosts[:3],
                                        ZooKeeperConfig(server_msgs_per_sec=None))

    def make_client(index: int = 0):
        session = ZooKeeperClient(hosts[3], ensemble, server_id=index % 3)
        return ZooKeeperKVClient(session)

    def prepare_keys(keys):
        ensemble.preload({f"/kv/{k}": b"" for k in keys})

    return _Backend("zookeeper", make_client, prepare_keys, topology.sim)


@pytest.fixture(params=["netchain", "zookeeper"])
def backend(request) -> _Backend:
    if request.param == "netchain":
        return _netchain_backend()
    return _zookeeper_backend()


# --------------------------------------------------------------------- #
# The protocol operations, identically on both backends.
# --------------------------------------------------------------------- #

def test_protocol_operations_round_trip(backend):
    backend.prepare_keys(["alpha"])
    client = backend.make_client()
    assert client.write("alpha", b"v1").result().ok
    read = client.read("alpha").result()
    assert read.ok and read.value == b"v1"
    assert read.backend == backend.name
    assert client.cas("alpha", b"v1", b"v2").result().ok
    conflict = client.cas("alpha", b"v1", b"v3").result()
    assert not conflict.ok and conflict.cas_failed
    assert client.read("alpha").result().value == b"v2"


def test_insert_creates_new_keys(backend):
    client = backend.make_client()
    assert client.insert("fresh-key", b"first").result().ok
    assert client.read("fresh-key").result().value == b"first"


def test_zookeeper_insert_creates_nested_parents():
    backend = _zookeeper_backend()
    client = backend.make_client()
    assert client.insert("flat", b"1").result().ok
    # A later key with a deeper parent chain must still get its ancestors.
    nested = client.insert("users/42", b"2").result()
    assert nested.ok
    assert client.read("users/42").result().value == b"2"


def test_insert_latency_includes_creation_cost(backend):
    client = backend.make_client()
    result = client.insert("timed-key", b"v").result()
    assert result.ok
    assert result.latency > 0


def test_read_missing_key_reports_not_found(backend):
    backend.prepare_keys(["exists"])
    client = backend.make_client()
    result = client.read("never-created").result()
    assert not result.ok
    assert result.not_found


# --------------------------------------------------------------------- #
# Futures and combinators.
# --------------------------------------------------------------------- #

def test_future_then_chaining(backend):
    backend.prepare_keys(["chained"])
    client = backend.make_client()
    observed = []
    future = client.write("chained", b"x").then(observed.append).then(observed.append)
    future.result()
    assert len(observed) == 2 and observed[0].ok
    # then() after resolution fires immediately.
    future.then(observed.append)
    assert len(observed) == 3


def test_gather_preserves_order(backend):
    keys = [f"g{i}" for i in range(6)]
    backend.prepare_keys(keys)
    client = backend.make_client()
    for key in keys:
        client.write(key, key.encode()).result()
    results = gather([client.read(k) for k in keys]).result()
    assert [r.value for r in results] == [k.encode() for k in keys]


def test_first_resolves_with_earliest(backend):
    backend.prepare_keys(["f1"])
    client = backend.make_client()
    never = KVFuture(client.sim, op="noop")
    result = first([never, client.read("f1")]).result()
    assert result.ok


def test_unresolved_future_times_out():
    sim = Simulator()
    future = KVFuture(sim, op="noop", key=b"k")
    with pytest.raises(KVTimeout):
        future.result(deadline=0.01)


def test_gather_propagates_timeout(backend):
    backend.prepare_keys(["t1"])
    client = backend.make_client()
    stuck = KVFuture(client.sim, op="noop")
    combined = gather([client.read("t1"), stuck])
    with pytest.raises(KVTimeout):
        combined.result(deadline=0.05)


def test_gather_with_one_failed_leg_still_resolves(backend):
    backend.prepare_keys(["g-ok"])
    client = backend.make_client()
    results = gather([client.read("g-ok"),
                      client.read("g-missing"),
                      client.read("g-ok")]).result()
    assert [r.ok for r in results] == [True, False, True]
    assert results[1].not_found
    assert results[1].error is not None


def test_gather_with_all_legs_failed_resolves(backend):
    backend.prepare_keys(["exists"])
    client = backend.make_client()
    results = gather([client.read(f"absent-{i}") for i in range(3)]).result()
    assert all(not r.ok and r.not_found for r in results)


def test_first_resolves_with_failure_outcomes(backend):
    backend.prepare_keys(["f-ok"])
    client = backend.make_client()
    # A failure outcome is a resolution: first() must surface it rather
    # than wait for a slower success.
    never = KVFuture(client.sim, op="noop")
    result = first([never, client.read("f-absent")]).result()
    assert not result.ok and result.not_found
    # All legs failing still resolves with the earliest failure.
    result = first([client.read("f-absent"), client.read("f-absent2")]).result()
    assert not result.ok


def test_gather_and_first_validate_empty_input():
    with pytest.raises(ValueError):
        gather([])
    with pytest.raises(ValueError):
        first([])


def test_gather_across_mixed_backends():
    """One gather over futures from different backends (different
    simulators): each simulator is driven separately; the combined future
    resolves through callbacks alone and preserves input order."""
    netchain = _netchain_backend()
    zookeeper = _zookeeper_backend()
    netchain.prepare_keys(["mix"])
    zookeeper.prepare_keys(["mix"])
    nc_client = netchain.make_client()
    zk_client = zookeeper.make_client()
    nc_future = nc_client.read("mix")
    zk_future = zk_client.read("mix")
    missing = zk_client.read("mix-absent")
    combined = gather([nc_future, zk_future, missing])
    nc_future.result()
    assert not combined.done()  # the ZooKeeper legs are still in flight
    zk_future.result()
    missing.result()
    assert combined.done()
    results = combined.result()
    assert [r.backend for r in results] == ["netchain", "zookeeper", "zookeeper"]
    assert [r.ok for r in results] == [True, True, False]


def test_first_across_mixed_backends_picks_earliest_resolved():
    netchain = _netchain_backend()
    zookeeper = _zookeeper_backend()
    netchain.prepare_keys(["race"])
    zookeeper.prepare_keys(["race"])
    zk_future = zookeeper.make_client().read("race")
    nc_future = netchain.make_client().read("race")
    # result() drives the first future's simulator (NetChain here), whose
    # microsecond read wins the race.
    combined = first([nc_future, zk_future])
    winner = combined.result()
    assert winner.backend == "netchain"
    zk_future.result()  # drain the other backend; the winner stands
    assert combined.result().backend == "netchain"


# --------------------------------------------------------------------- #
# Sessions and batched pipelined submission.
# --------------------------------------------------------------------- #

def test_batch_preserves_submission_order(backend):
    # Pipelining overlaps operations, so a batch does not serialize a read
    # behind an earlier in-flight write to the same key; order preservation
    # means each result lands on the future of the operation it belongs to,
    # in submission order.  Write in one batch, read in the next.
    keys = [f"b{i}" for i in range(10)]
    backend.prepare_keys(keys)
    client = backend.make_client()
    session = client.session(window=4)
    writes = session.batch()
    for key in keys:
        writes.write(key, key.encode())
    write_results = writes.results()
    assert all(r.ok and r.op == "write" for r in write_results)
    assert [r.key.rstrip(b"\x00") for r in write_results] == [k.encode() for k in keys]
    reads = session.batch()
    for key in reversed(keys):
        reads.read(key)
    read_results = reads.results()
    assert [r.value for r in read_results] == [k.encode() for k in reversed(keys)]


def test_batch_window_bounds_inflight(backend):
    keys = [f"w{i}" for i in range(12)]
    backend.prepare_keys(keys)
    client = backend.make_client()

    outstanding = {"now": 0, "max": 0}
    original_read = client.read

    def tracking_read(key):
        outstanding["now"] += 1
        outstanding["max"] = max(outstanding["max"], outstanding["now"])

        def on_done(_result):
            outstanding["now"] -= 1

        return original_read(key).then(on_done)

    client.read = tracking_read
    batch = KVSession(client, window=3).batch()
    for key in keys:
        batch.read(key)
    results = batch.results()
    assert len(results) == 12 and all(r.ok for r in results)
    assert outstanding["max"] <= 3
    # The pipeline actually overlapped queries rather than serializing them.
    assert outstanding["max"] > 1


def test_batch_partial_failure_resolves_every_future(backend):
    backend.prepare_keys(["ok1", "ok2"])
    client = backend.make_client()
    batch = client.session(window=8).batch()
    batch.read("ok1").read("missing-key").read("ok2")
    cas = batch.cas("ok1", b"wrong-expected", b"x")
    results = cas.results()
    assert [r.ok for r in results] == [True, False, True, False]
    assert results[1].not_found
    assert results[3].cas_failed


def test_batch_mixed_ops_and_single_submission(backend):
    backend.prepare_keys(["m1"])
    client = backend.make_client()
    # window=1 serializes the pipeline, so dependent operations on the same
    # key observe each other in submission order.
    batch = (client.session(window=1).batch()
             .write("m1", b"v").read("m1").cas("m1", b"v", b"w").read("m1"))
    futures = batch.submit()
    with pytest.raises(RuntimeError):
        batch.submit()
    results = gather(futures).result()
    assert [r.op for r in results] == ["write", "read", "cas", "read"]
    assert results[3].value == b"w"


def test_session_window_validation(backend):
    client = backend.make_client()
    with pytest.raises(ValueError):
        client.session(window=0)


# --------------------------------------------------------------------- #
# Coordination primitives through the same code path on both backends.
# --------------------------------------------------------------------- #

def test_lock_mutual_exclusion_on_any_backend(backend):
    backend.prepare_keys(["lock:shared"])
    lock1 = DistributedLock(backend.make_client(0), "lock:shared", owner="c1")
    lock2 = DistributedLock(backend.make_client(1), "lock:shared", owner="c2")
    assert lock1.try_acquire()
    assert not lock2.try_acquire()
    assert not lock2.release()  # a non-owner cannot release
    assert lock1.holder() == b"c1"
    assert lock1.release()
    assert lock2.try_acquire()
    assert lock2.release()


def test_barrier_on_any_backend(backend):
    backend.prepare_keys(["barrier:x"])
    parties = [Barrier(backend.make_client(i), "barrier:x", parties=3)
               for i in range(3)]
    assert parties[0].arrive() == 1
    assert not parties[0].is_complete()
    assert parties[1].arrive() == 2
    assert parties[2].arrive() == 3
    for barrier in parties:
        assert barrier.is_complete()
    parties[0].wait()


def test_load_client_measures_on_any_backend(backend):
    keys = [f"k{i:08d}" for i in range(10)]
    backend.prepare_keys(keys)
    workload = KeyValueWorkload(WorkloadConfig(store_size=10, key_prefix="k",
                                               write_ratio=0.5, seed=0))
    client = LoadClient(backend.make_client(), workload, concurrency=4)
    duration = 0.05 if backend.name == "netchain" else 0.5
    measurement = measure_load([client], warmup=duration / 5, duration=duration)
    assert measurement.success_qps > 0
    assert measurement.mean_read_latency > 0
    assert measurement.mean_write_latency > 0


def test_transaction_client_commits_on_any_backend(backend):
    config = TransactionWorkloadConfig(contention_index=0.5, cold_items=20, seed=3,
                                       locks_per_txn=3)
    backend.prepare_keys(config.hot_keys() + config.cold_keys())
    client = TransactionClient(backend.make_client(), config, client_id="txn-0")
    client.start()
    duration = 0.05 if backend.name == "netchain" else 2.0
    backend.sim.run(until=backend.sim.now + duration)
    client.stop()
    backend.sim.run(until=backend.sim.now + duration)
    assert client.stats.committed.total() > 0
    assert client.stats.aborts == 0  # single client never conflicts
    # Every lock was released on commit.
    probe = backend.make_client()
    for key in config.hot_keys():
        assert probe.read(key).result(10.0).value == b""
