"""Unit tests for the discrete-event engine."""

from __future__ import annotations

import random

from repro.netsim.engine import Simulator


def test_clock_starts_at_zero():
    sim = Simulator()
    assert sim.now == 0.0
    assert sim.pending() == 0


def test_events_run_in_time_order():
    sim = Simulator()
    order = []
    sim.schedule(3e-6, lambda: order.append("c"))
    sim.schedule(1e-6, lambda: order.append("a"))
    sim.schedule(2e-6, lambda: order.append("b"))
    sim.run()
    assert order == ["a", "b", "c"]


def test_ties_run_in_insertion_order():
    sim = Simulator()
    order = []
    for label in ("first", "second", "third"):
        sim.schedule(1e-6, lambda l=label: order.append(l))
    sim.run()
    assert order == ["first", "second", "third"]


def test_clock_advances_to_event_time():
    sim = Simulator()
    seen = []
    sim.schedule(5.0, lambda: seen.append(sim.now))
    sim.run()
    assert seen == [5.0]
    assert sim.now == 5.0


def test_negative_delay_is_clamped():
    sim = Simulator()
    fired = []
    sim.schedule(-1.0, lambda: fired.append(sim.now))
    sim.run()
    assert fired == [0.0]


def test_run_until_stops_before_later_events():
    sim = Simulator()
    fired = []
    sim.schedule(1.0, lambda: fired.append(1.0))
    sim.schedule(10.0, lambda: fired.append(10.0))
    sim.run(until=5.0)
    assert fired == [1.0]
    assert sim.now == 5.0
    # The later event is still pending and runs on the next call.
    sim.run(until=20.0)
    assert fired == [1.0, 10.0]


def test_run_until_with_no_events_advances_clock():
    sim = Simulator()
    sim.run(until=2.5)
    assert sim.now == 2.5


def test_event_can_be_cancelled():
    sim = Simulator()
    fired = []
    event = sim.schedule(1.0, lambda: fired.append("x"))
    event.cancel()
    sim.run()
    assert fired == []


def test_nested_scheduling_from_callback():
    sim = Simulator()
    seen = []

    def outer():
        seen.append(("outer", sim.now))
        sim.schedule(1.0, lambda: seen.append(("inner", sim.now)))

    sim.schedule(1.0, outer)
    sim.run()
    assert seen == [("outer", 1.0), ("inner", 2.0)]


def test_schedule_at_absolute_time():
    sim = Simulator()
    seen = []
    sim.schedule(1.0, lambda: sim.schedule_at(5.0, lambda: seen.append(sim.now)))
    sim.run()
    assert seen == [5.0]


def test_schedule_at_past_time_runs_immediately():
    sim = Simulator()
    seen = []

    def later():
        sim.schedule_at(0.5, lambda: seen.append(sim.now))

    sim.schedule(2.0, later)
    sim.run()
    assert seen == [2.0]


def test_stop_halts_the_loop():
    sim = Simulator()
    fired = []
    sim.schedule(1.0, lambda: (fired.append(1), sim.stop()))
    sim.schedule(2.0, lambda: fired.append(2))
    sim.run()
    assert fired == [1]
    assert sim.pending() == 1


def test_max_events_limits_execution():
    sim = Simulator()
    fired = []
    for i in range(10):
        sim.schedule(float(i), lambda i=i: fired.append(i))
    sim.run(max_events=3)
    assert fired == [0, 1, 2]


def test_processed_events_counter():
    sim = Simulator()
    for i in range(5):
        sim.schedule(float(i), lambda: None)
    sim.run()
    assert sim.processed_events == 5


def test_periodic_process_and_cancel():
    sim = Simulator()
    ticks = []
    cancel = sim.every(1.0, lambda: ticks.append(sim.now))
    sim.run(until=3.5)
    assert ticks == [0.0, 1.0, 2.0, 3.0]
    cancel()
    sim.run(until=10.0)
    assert len(ticks) == 4


def test_periodic_process_with_jitter_stays_positive():
    sim = Simulator()
    ticks = []
    rng = random.Random(1)
    sim.every(1.0, lambda: ticks.append(sim.now), jitter=0.5, rng=rng)
    sim.run(until=10.0)
    assert len(ticks) >= 6
    assert all(b > a for a, b in zip(ticks, ticks[1:], strict=False))


# --------------------------------------------------------------------- #
# Hot-path rewrite edge cases: FIFO ties, cancellation, tombstone
# compaction, stop_when, and whole-scenario determinism.
# --------------------------------------------------------------------- #


def test_same_timestamp_fifo_across_schedule_apis():
    """FIFO within a timestamp holds across schedule / call_after / args."""
    sim = Simulator()
    order = []
    sim.schedule(1e-6, lambda: order.append("a"))
    sim.call_after(1e-6, order.append, "b")
    sim.schedule(1e-6, order.append, "c")
    sim.call_after(1e-6, lambda: order.append("d"))
    sim.run()
    assert order == ["a", "b", "c", "d"]


def test_cancel_then_reschedule():
    sim = Simulator()
    fired = []
    event = sim.schedule(1.0, lambda: fired.append("first"))
    event.cancel()
    assert event.cancelled
    replacement = sim.schedule(2.0, lambda: fired.append("second"))
    sim.run()
    assert fired == ["second"]
    assert not replacement.cancelled
    # Cancelling an already-fired event is a harmless no-op and must not
    # corrupt the tombstone accounting.
    replacement.cancel()
    assert sim.tombstones == 0


def test_cancel_is_idempotent():
    sim = Simulator()
    event = sim.schedule(1.0, lambda: None)
    event.cancel()
    event.cancel()
    assert sim.tombstones == 1
    sim.run()
    assert sim.tombstones == 0


def test_run_stop_when_stops_at_triggering_event():
    """stop_when halts at the triggering event's timestamp, not at until."""
    sim = Simulator()
    seen = []
    sim.schedule(1.0, lambda: seen.append(1.0))
    sim.schedule(2.0, lambda: seen.append(2.0))
    sim.schedule(9.0, lambda: seen.append(9.0))
    sim.run(until=100.0, stop_when=lambda: len(seen) == 2)
    assert seen == [1.0, 2.0]
    assert sim.now == 2.0  # exactly the triggering event, no fast-forward
    sim.run(until=100.0)
    assert seen == [1.0, 2.0, 9.0]


def test_tombstones_are_compacted_when_majority_dead():
    """Cancelled events must not sit in the heap forever (satellite fix)."""
    sim = Simulator()
    events = [sim.schedule(1.0 + i * 1e-3, lambda: None) for i in range(512)]
    assert sim.pending() == 512
    # Cancel well past half the queue: compaction must kick in and shrink
    # the heap rather than leaving the tombstones until their deadlines.
    for event in events[:400]:
        event.cancel()
    assert sim.pending() < 512
    assert sim.pending_live() == 112
    assert sim.tombstones * 2 <= sim.pending()
    fired = []
    sim.schedule(0.5, lambda: fired.append("live"))
    sim.run()
    assert fired == ["live"]
    assert sim.processed_events == 113  # 112 survivors + the extra one


def test_compaction_during_run_keeps_queue_reference_valid():
    """Cancelling en masse from inside a callback (which triggers an
    in-place compaction) must not detach the running loop's queue."""
    sim = Simulator()
    fired = []
    doomed = [sim.schedule(5.0, lambda: fired.append("doomed")) for _ in range(256)]

    def cancel_all():
        for event in doomed:
            event.cancel()

    sim.schedule(1.0, cancel_all)
    sim.schedule(2.0, lambda: fired.append("after"))
    sim.run()
    assert fired == ["after"]
    assert sim.pending() == 0


def test_periodic_process_via_every_still_cancellable():
    sim = Simulator()
    ticks = []
    cancel = sim.every(1.0, lambda: ticks.append(sim.now))
    sim.run(until=2.5)
    cancel()
    sim.run(until=10.0)
    assert ticks == [0.0, 1.0, 2.0]


def test_seeded_scenario_processed_events_pinned():
    """Whole-scenario determinism: the rewritten engine must execute the
    exact same event stream for a seeded macro-scenario.  If this count
    moves, the engine's ordering or the simulation's event structure
    changed -- both are part of the determinism contract."""
    from repro.deploy import DeploymentSpec, WorkloadSpec, run_scenario

    spec = DeploymentSpec(backend="netchain", store_size=20, value_size=32, seed=5)
    workload = WorkloadSpec(num_clients=2, concurrency=2, write_ratio=0.5,
                            duration=0.25, drain=0.25)
    result = run_scenario(spec, workload)
    assert result.ok(), result.failures
    assert result.deployment.sim.processed_events == 116946
    assert result.completed_ops == 10254
