"""DET008 fixtures: deterministic identity; __hash__ stays allowed."""

import itertools

_ids = itertools.count(1)


def order_servers(servers):
    return sorted(servers, key=lambda server: server.name)


def label():
    return f"client-{next(_ids):04d}"


class Key:
    def __init__(self, name):
        self.name = name

    def __hash__(self):
        return hash(self.name)
