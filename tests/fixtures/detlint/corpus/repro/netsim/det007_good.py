"""DET007 fixtures: every accepted guard shape for optional telemetry."""


class Tracer:
    def query_tx(self, agent, pending):
        return None

    def packet_rx(self, packet):
        return None


class Agent:
    def __init__(self, telemetry):
        self.telemetry = telemetry

    def retransmit(self, pending):
        tel = self.telemetry
        if tel is not None:
            tel.query_tx(self, pending)

    def observe(self, packet):
        tel = self.telemetry
        if tel is None:
            return
        tel.packet_rx(packet)

    def flush(self, packet):
        tel = self.telemetry
        if tel is not None and packet is not None:
            tel.packet_rx(packet)

    def attach(self):
        self.telemetry = Tracer()
        self.telemetry.packet_rx(None)
