"""DET007 fixtures: telemetry calls outside the None guard."""


class Agent:
    def __init__(self, telemetry):
        self.telemetry = telemetry

    def retransmit(self, pending):
        self.telemetry.query_tx(self, pending)

    def observe(self, packet):
        tel = self.telemetry
        tel.packet_rx(packet)
