"""DET006 fixtures: per-event closures handed to the scheduler."""

import functools


class Pipeline:
    def __init__(self, sim):
        self.sim = sim

    def process_packet(self, packet, port):
        self.sim.call_after(0.1, lambda: self.forward(packet, port))

    def forward_burst(self, packets):
        def deliver():
            return packets.pop()

        self.sim.call_after(0.2, deliver)

    def send_probe(self, probe):
        self.sim.schedule(0.3, functools.partial(self.forward, probe, 0))

    def forward(self, packet, port):
        return packet, port
