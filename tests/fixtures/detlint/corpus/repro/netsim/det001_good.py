"""DET001 fixtures: sim-time code deriving time and randomness correctly."""

import random


def stamp_events(sim, seed):
    started = sim.now
    rng = random.Random(seed)
    jitter = rng.uniform(0.0, 1.0)
    return started, jitter
