"""DET006 fixtures: bound callbacks with positional args; cold paths free."""


class Pipeline:
    def __init__(self, sim):
        self.sim = sim

    def process_packet(self, packet, port):
        self.sim.call_after(0.1, self.forward, packet, port)

    def start_recovery(self):
        # Control-plane code fires once per failure; closures are fine here.
        self.sim.call_after(1.0, lambda: self.rebuild())

    def forward(self, packet, port):
        return packet, port

    def rebuild(self):
        return None
