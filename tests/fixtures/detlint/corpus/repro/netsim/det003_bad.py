"""DET003 fixtures: iteration order left to hashes or the filesystem."""

import glob
import os
from pathlib import Path

NAMES = {"alpha", "beta"}


def iterate_sets(extra):
    for name in NAMES:
        print(name)
    for name in {"a", "b"} | extra:
        print(name)
    ordered = list({1, 2, 3})
    combined = ",".join({"x", "y"})
    return ordered, combined


def scan_dirs(base):
    for entry in os.listdir(base):
        print(entry)
    found = glob.glob("*.json")
    for path in Path(base).glob("*.txt"):
        print(path)
    return found
