"""DET002 fixtures: explicitly seeded RNGs threaded as parameters."""

import random

import numpy as np


def seeded(seed):
    rng = random.Random(seed)
    gen = np.random.default_rng(seed)
    return rng.random() + float(gen.random())


def threaded(rng):
    return rng.uniform(0.0, 1.0)
