"""DET001 fixtures: wall clock and ambient entropy in sim-scope code."""

import datetime
import os
import time
import uuid


def stamp_events():
    started = time.time()
    deadline = time.monotonic() + 5.0
    today = datetime.datetime.now()
    token = uuid.uuid4()
    noise = os.urandom(8)
    return started, deadline, today, token, noise
