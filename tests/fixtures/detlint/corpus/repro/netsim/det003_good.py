"""DET003 fixtures: pinned iteration order; membership and aggregates."""

import os
from pathlib import Path

NAMES = {"alpha", "beta"}


def iterate_sets(extra):
    for name in sorted(NAMES):
        print(name)
    if "alpha" in NAMES:
        print("member")
    count = len(NAMES | extra)
    ordered = sorted({1, 2, 3})
    return count, ordered


def scan_dirs(base):
    for entry in sorted(os.listdir(base)):
        print(entry)
    return [path.name for path in sorted(Path(base).glob("*.txt"))]
