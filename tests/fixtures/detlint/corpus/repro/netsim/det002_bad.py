"""DET002 fixtures: global, unseeded or machine-specifically seeded RNGs."""

import random

import numpy as np


def unseeded_everywhere():
    rng = random.Random()
    system = random.SystemRandom()
    gen = np.random.default_rng()
    np.random.shuffle([1, 2])
    return rng, system, gen


def machine_specific(name):
    return random.Random(hash(name) & 0xFFFF)


def global_plane():
    return random.uniform(0.0, 1.0)
