"""DET005 fixtures: __slots__ drift in plain and dataclass form."""

from dataclasses import dataclass


class Entry:
    __slots__ = ("key", "value")

    def __init__(self, key, value):
        self.key = key
        self.value = value

    def touch(self):
        self.dirty = True


class WideEntry(Entry):
    def widen(self):
        return self


@dataclass(slots=True)
class Header:
    proto: int
    length: int

    def retag(self):
        self.checksum = 0


def module_level():
    entry = Entry("a", 1)
    entry.oops = 2
    return entry
