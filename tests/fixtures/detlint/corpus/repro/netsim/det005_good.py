"""DET005 fixtures: slots declared for every assigned attribute."""

from dataclasses import dataclass
from typing import ClassVar


class Entry:
    __slots__ = ("key", "value", "dirty")

    def __init__(self, key, value):
        self.key = key
        self.value = value
        self.dirty = False


class WideEntry(Entry):
    __slots__ = ("extra",)

    def widen(self):
        self.extra = 1


@dataclass(slots=True)
class Header:
    MAX_LENGTH: ClassVar[int] = 64

    proto: int
    length: int

    def shrink(self):
        self.length = 0
