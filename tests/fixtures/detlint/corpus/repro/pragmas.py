"""Pragma fixtures: justified, unjustified, unused and malformed forms."""

import json

payload = {"b": 2, "a": 1}

# Justified suppression: silenced, and recorded with its justification.
text = json.dumps(payload)  # detlint: disable=DET004 -- key order is the payload under test

# Missing justification: the pragma itself becomes a DET000 finding and the
# DET004 finding it targeted is NOT silenced.
loose = json.dumps(payload)  # detlint: disable=DET004

# detlint: disable-next=DET004 -- exercised by the next line
pinned = json.dumps(payload)

# Unused suppression: nothing on this line violates DET003.
count = len(payload)  # detlint: disable=DET003 -- nothing here, flagged as unused

# Malformed: not a recognized pragma shape.
# detlint: enable=DET004
