"""DET008 fixtures: process-specific identity in ordering and labels."""


def order_servers(servers):
    return sorted(servers, key=lambda server: hash(server.name))


def label(obj):
    return f"client-{id(obj):x}"
