"""DET004 fixtures: artifact JSON without canonical key order."""

import json


def write_report(path, payload):
    path.write_text(json.dumps(payload, indent=2))
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, sort_keys=False)
