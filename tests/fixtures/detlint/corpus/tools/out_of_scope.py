"""Scoped rules must stay quiet outside simulator/artifact paths."""

import json
import time


def wall_clock_benchmark():
    started = time.time()
    report = json.dumps({"started": started})
    for item in {"a", "b"}:
        print(item)
    return report
