"""Regenerate the golden adversarial history corpus.

Each fixture is a standalone ``history/v1`` NDJSON file with a known
linearizability verdict, recorded in ``manifest.json`` next to it.  The
corpus pins down the checker semantics the simulator relies on -- retry
echoes, ambiguous (lost-reply) latitude, CAS atomicity, version
monotonicity -- so a checker change that silently flips any verdict fails
the regression test (``tests/test_history_fixtures.py``).

Run from the repository root::

    PYTHONPATH=src python tests/fixtures/histories/generate.py
"""

import json
import sys
from pathlib import Path

from repro.core.history import HistoryOp
from repro.core.history_store import encode_bytes, write_ndjson

HERE = Path(__file__).parent

A, B, C = b"A", b"B", b"C"
K = b"k"


def op(op_id, client, name, key, inv, ret, *, value=None, expected=None,
       ok=None, output=None, nf=False, cf=False, to=False, retries=0,
       version=None):
    return HistoryOp(op_id=op_id, client=client, op=name, key=key,
                     value=value, expected=expected, invoked_at=float(inv),
                     returned_at=(None if ret is None else float(ret)),
                     ok=ok, output=output, not_found=nf, cas_failed=cf,
                     timed_out=to, retries=retries, version=version)


FIXTURES = [
    {
        "file": "ok_simple_rw.ndjson",
        "description": "sequential writes and reads, trivially linearizable",
        "initial": {K: A},
        "ok": True,
        "ops": [
            op(0, "c0", "write", K, 1, 2, value=B, ok=True),
            op(1, "c1", "read", K, 3, 4, ok=True, output=B),
            op(2, "c0", "write", K, 5, 6, value=C, ok=True),
            op(3, "c1", "read", K, 7, 8, ok=True, output=C),
        ],
    },
    {
        "file": "ok_concurrent_overlap.ndjson",
        "description": "two overlapping writes; reads fix the order C-then-B",
        "initial": {K: A},
        "ok": True,
        "ops": [
            op(0, "c0", "write", K, 1, 4, value=B, ok=True),
            op(1, "c1", "write", K, 2, 5, value=C, ok=True),
            op(2, "c2", "read", K, 6, 7, ok=True, output=B),
            op(3, "c2", "read", K, 8, 9, ok=True, output=B),
        ],
    },
    {
        "file": "ok_retry_echo_oscillation.ndjson",
        "description": "value oscillates B,C,B: legal only because w(B) was "
                       "retried over UDP and a straggler retransmission "
                       "re-imposes it (NetChain 4.3 echo semantics)",
        "initial": {K: A},
        "ok": True,
        "ops": [
            op(0, "c0", "write", K, 1, 2, value=B, ok=True, retries=2),
            op(1, "c1", "write", K, 3, 4, value=C, ok=True),
            op(2, "c2", "read", K, 5, 6, ok=True, output=C),
            op(3, "c2", "read", K, 7, 8, ok=True, output=B),
        ],
    },
    {
        "file": "ok_lost_ack.ndjson",
        "description": "a timed-out write whose ack was lost took effect: a "
                       "later read observes its value",
        "initial": {K: A},
        "ok": True,
        "ops": [
            op(0, "c0", "write", K, 1, 6, value=B, ok=False, to=True),
            op(1, "c1", "read", K, 7, 8, ok=True, output=B),
        ],
    },
    {
        "file": "ok_ambiguous_drop.ndjson",
        "description": "a timed-out write that never took effect: every "
                       "later read still observes the old value",
        "initial": {K: A},
        "ok": True,
        "ops": [
            op(0, "c0", "write", K, 1, 6, value=B, ok=False, to=True),
            op(1, "c1", "read", K, 7, 8, ok=True, output=A),
            op(2, "c1", "read", K, 9, 10, ok=True, output=A),
        ],
    },
    {
        "file": "ok_ambiguous_cas.ndjson",
        "description": "a timed-out CAS that would have succeeded did: the "
                       "next read observes the proposed value",
        "initial": {K: A},
        "ok": True,
        "ops": [
            op(0, "c0", "cas", K, 1, 6, expected=A, value=B, ok=False,
               to=True),
            op(1, "c1", "read", K, 7, 8, ok=True, output=B),
        ],
    },
    {
        "file": "ok_delete_insert.ndjson",
        "description": "delete, not-found read, re-insert, read: the "
                       "missing-key state threads through correctly",
        "initial": {K: A},
        "ok": True,
        "ops": [
            op(0, "c0", "delete", K, 1, 2, ok=True),
            op(1, "c1", "read", K, 3, 4, ok=False, nf=True),
            op(2, "c0", "insert", K, 5, 6, value=B, ok=True),
            op(3, "c1", "read", K, 7, 8, ok=True, output=B),
        ],
    },
    {
        "file": "ok_pending_tail.ndjson",
        "description": "an operation still in flight at run end (no "
                       "response at all) may be dropped or applied",
        "initial": {K: A},
        "ok": True,
        "ops": [
            op(0, "c0", "write", K, 1, 2, value=B, ok=True),
            op(1, "c1", "read", K, 3, 4, ok=True, output=B),
            op(2, "c0", "write", K, 5, None, value=C),
        ],
    },
    {
        "file": "bad_stale_read.ndjson",
        "description": "stale read: the overwritten value reappears after "
                       "the new value was observed, with no retries to "
                       "excuse it",
        "initial": {K: A},
        "ok": False,
        "ops": [
            op(0, "c0", "write", K, 1, 2, value=B, ok=True),
            op(1, "c1", "read", K, 3, 4, ok=True, output=B),
            op(2, "c1", "read", K, 5, 6, ok=True, output=A),
        ],
    },
    {
        "file": "bad_split_brain_write.ndjson",
        "description": "split brain: two partitions each serve their own "
                       "write, so reads oscillate B,C,B with no retransmits",
        "initial": {K: A},
        "ok": False,
        "ops": [
            op(0, "c0", "write", K, 1, 2, value=B, ok=True),
            op(1, "c1", "write", K, 3, 4, value=C, ok=True),
            op(2, "c2", "read", K, 5, 6, ok=True, output=B),
            op(3, "c3", "read", K, 7, 8, ok=True, output=C),
            op(4, "c2", "read", K, 9, 10, ok=True, output=B),
        ],
    },
    {
        "file": "bad_phantom_read.ndjson",
        "description": "a read returns a value nobody ever wrote",
        "initial": {K: A},
        "ok": False,
        "ops": [
            op(0, "c0", "write", K, 1, 2, value=B, ok=True),
            op(1, "c1", "read", K, 3, 4, ok=True, output=b"Z"),
        ],
    },
    {
        "file": "bad_cas_double_win.ndjson",
        "description": "two sequential CAS on the same expected value both "
                       "claim success: the second is impossible",
        "initial": {K: A},
        "ok": False,
        "ops": [
            op(0, "c0", "cas", K, 1, 2, expected=A, value=B, ok=True),
            op(1, "c1", "cas", K, 3, 4, expected=A, value=C, ok=True),
        ],
    },
    {
        "file": "ver_version_regression.ndjson",
        "description": "linearizable values, but one client observes the "
                       "backend version go backwards (TLA+ Consistency "
                       "violation)",
        "initial": {K: A},
        "ok": True,
        "version_violations": 1,
        "ops": [
            op(0, "c0", "write", K, 1, 2, value=B, ok=True, version=(1, 5)),
            op(1, "c0", "read", K, 3, 4, ok=True, output=B, version=(1, 4)),
        ],
    },
]


def main() -> int:
    manifest = []
    for fixture in FIXTURES:
        initial = {encode_bytes(key): encode_bytes(value)
                   for key, value in fixture["initial"].items()}
        write_ndjson(HERE / fixture["file"], fixture["ops"],
                     meta={"name": fixture["file"].rsplit(".", 1)[0],
                           "description": fixture["description"],
                           "initial": initial})
        manifest.append({
            "file": fixture["file"],
            "description": fixture["description"],
            "initial": initial,
            "ok": fixture["ok"],
            "version_violations": fixture.get("version_violations", 0),
        })
    (HERE / "manifest.json").write_text(
        json.dumps({"schema": "history-corpus/v1", "fixtures": manifest},
                   indent=1, sort_keys=True) + "\n", encoding="utf-8")
    print(f"wrote {len(manifest)} fixtures + manifest.json to {HERE}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
