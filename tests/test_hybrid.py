"""Tests for the hybrid NetChain-accelerator store (Section 6)."""

from __future__ import annotations

import pytest

from repro.core.hybrid import (
    DictBackend,
    HybridKVClient,
    HybridPolicy,
    HybridStore,
    ZooKeeperBackend,
)
from repro.core.protocol import MAX_PROTOTYPE_VALUE_BYTES
from tests.conftest import make_cluster


@pytest.fixture
def hybrid():
    cluster = make_cluster()
    backend = DictBackend()
    policy = HybridPolicy(max_network_value_bytes=64, promote_after_reads=3)
    store = HybridStore(cluster.agent("H0"), backend, policy=policy)
    return cluster, backend, store


def test_pinned_keys_live_in_the_network(hybrid):
    cluster, backend, store = hybrid
    store.policy.pin("cfg:leader")
    assert store.write("cfg:leader", b"H0")
    assert store.in_network("cfg:leader")
    assert store.read("cfg:leader") == b"H0"
    assert store.stats.network_writes == 1
    assert store.stats.network_reads == 1
    assert backend.read("cfg:leader") is None


def test_unpinned_small_keys_start_on_servers(hybrid):
    cluster, backend, store = hybrid
    assert store.write("cold-key", b"value")
    assert not store.in_network("cold-key")
    assert backend.read("cold-key") == b"value"
    assert store.read("cold-key") == b"value"
    assert store.stats.server_reads == 1


def test_large_values_always_go_to_servers(hybrid):
    cluster, backend, store = hybrid
    big = bytes(500)
    assert store.write("big-object", big)
    assert not store.in_network("big-object")
    assert store.read("big-object") == big


def test_pinned_key_with_oversized_value_rejected(hybrid):
    cluster, backend, store = hybrid
    store.policy.pin("cfg:huge")
    with pytest.raises(ValueError):
        store.write("cfg:huge", bytes(128))


def test_hot_keys_promoted_after_repeated_reads(hybrid):
    cluster, backend, store = hybrid
    store.write("hot", b"small")
    for _ in range(store.policy.promote_after_reads):
        assert store.read("hot") == b"small"
    assert store.in_network("hot")
    assert store.stats.promotions == 1
    # Subsequent reads are served by the network tier.
    before = store.stats.network_reads
    assert store.read("hot") == b"small"
    assert store.stats.network_reads == before + 1


def test_value_growth_demotes_key_to_servers(hybrid):
    cluster, backend, store = hybrid
    store.policy.pin("growing")
    store.write("growing", b"tiny")
    assert store.in_network("growing")
    store.policy.pinned.clear()
    big = bytes(200)
    assert store.write("growing", big)
    assert not store.in_network("growing")
    assert store.stats.demotions == 1
    assert store.read("growing") == big


def test_delete_removes_from_both_tiers(hybrid):
    cluster, backend, store = hybrid
    store.policy.pin("net-key")
    store.write("net-key", b"x")
    store.write("srv-key", b"y")
    assert store.delete("net-key")
    assert store.delete("srv-key")
    assert not store.delete("srv-key")
    assert store.read("net-key") is None
    assert store.read("srv-key") is None
    assert cluster.controller.total_items() == 0


def test_cas_only_on_network_resident_keys(hybrid):
    cluster, backend, store = hybrid
    store.policy.pin("lock:1")
    store.write("lock:1", b"")
    assert store.cas("lock:1", b"", b"owner")
    assert not store.cas("lock:1", b"", b"other")
    store.write("server-only", b"v")
    with pytest.raises(ValueError):
        store.cas("server-only", b"v", b"w")


def test_network_fraction_statistic(hybrid):
    cluster, backend, store = hybrid
    store.policy.pin("hot")
    store.write("hot", b"1")
    store.write("cold", b"2")
    store.read("hot")
    store.read("cold")
    assert 0.0 < store.stats.network_fraction() < 1.0


def test_promoted_key_growing_past_pipeline_limit_demotes_cleanly():
    """A key promoted by popularity (not pinned) whose value later grows
    past MAX_PROTOTYPE_VALUE_BYTES must demote cleanly: network slot
    reclaimed, server tier authoritative, reads still correct."""
    cluster = make_cluster()
    backend = DictBackend()
    store = HybridStore(cluster.agent("H0"), backend,
                        policy=HybridPolicy(promote_after_reads=2))
    store.write("hot", b"small")
    for _ in range(2):
        assert store.read("hot") == b"small"
    assert store.in_network("hot")
    assert store.stats.promotions == 1
    items_before = cluster.controller.total_items()
    assert items_before == 1

    big = bytes(MAX_PROTOTYPE_VALUE_BYTES + 1)
    assert store.write("hot", big)
    assert not store.in_network("hot")
    assert store.stats.demotions == 1
    # The network slot was invalidated and garbage-collected...
    assert cluster.controller.total_items() == 0
    # ...the server tier is authoritative, and reads keep working.
    assert backend.read("hot") == big
    assert store.read("hot") == big
    # Growing further (still on the servers) stays clean.
    bigger = bytes(MAX_PROTOTYPE_VALUE_BYTES * 4)
    assert store.write("hot", bigger)
    assert store.read("hot") == bigger
    assert store.stats.demotions == 1


def test_pinned_keys_survive_policy_changes():
    """Mutating policy knobs (or rebuilding the policy) must not evict
    pinned keys from the network tier."""
    cluster = make_cluster()
    store = HybridStore(cluster.agent("H0"), DictBackend())
    store.policy.pin("cfg:leader")
    assert store.write("cfg:leader", b"H0")
    assert store.in_network("cfg:leader")

    # Tighten every knob that does not affect the already-stored value.
    store.policy.promote_after_reads = 10_000
    store.policy.max_network_value_bytes = 16
    assert store.in_network("cfg:leader")
    assert store.read("cfg:leader") == b"H0"
    assert store.write("cfg:leader", b"H1")
    assert store.read("cfg:leader") == b"H1"

    # Replacing the policy object wholesale keeps the pin set intact.
    store.policy = HybridPolicy(promote_after_reads=3,
                                pinned=set(store.policy.pinned))
    assert store.policy.is_pinned("cfg:leader")
    assert store.in_network("cfg:leader")
    assert store.read("cfg:leader") == b"H1"
    assert store.stats.demotions == 0


def test_pinned_key_served_from_network_after_placement_cache_loss():
    """Pinned keys are network-resident by policy, not by the placement
    cache: wiping the cache must not strand them."""
    cluster = make_cluster()
    store = HybridStore(cluster.agent("H0"), DictBackend())
    store.policy.pin("lock:1")
    store.write("lock:1", b"owner")
    store._network_keys.clear()
    assert store.in_network("lock:1")
    assert store.read("lock:1") == b"owner"
    assert store.stats.network_reads == 1


# --------------------------------------------------------------------- #
# The asynchronous client (HybridKVClient).
# --------------------------------------------------------------------- #

def test_async_client_matches_store_tiering():
    cluster = make_cluster()
    store = HybridStore(cluster.agent("H0"), DictBackend(),
                        policy=HybridPolicy(promote_after_reads=2))
    client = HybridKVClient(store)
    assert client.write("cold", b"v1").result().ok
    assert not store.in_network("cold")
    assert client.read("cold").result().value == b"v1"
    assert client.read("cold").result().value == b"v1"
    # The popularity promotion ran in the background; let it finish.
    cluster.run(until=cluster.sim.now + 0.1)
    assert store.in_network("cold")
    assert client.read("cold").result().value == b"v1"
    assert store.stats.promotions == 1


def test_async_promotion_aborts_when_a_server_write_races_it():
    """A server-tier write issued while a promotion is in flight must win:
    the stale network copy is dropped instead of shadowing the write."""
    cluster = make_cluster()
    store = HybridStore(cluster.agent("H0"), DictBackend(),
                        policy=HybridPolicy(promote_after_reads=1))
    client = HybridKVClient(store)
    client.write("raced", b"old").result()
    # This read triggers the (slow, control-plane) promotion...
    read_future = client.read("raced")
    # ...and this write lands on the server tier while it is in flight.
    write_future = client.write("raced", b"new")
    read_future.result()
    write_future.result()
    cluster.run(until=cluster.sim.now + 0.1)
    # The promotion aborted: nothing stale serves from the network.
    assert not store.in_network("raced")
    assert cluster.controller.total_items() == 0
    assert client.read("raced").result().value == b"new"


def test_promotion_removes_the_server_copy():
    """Tier exclusivity: once a key is promoted, no server copy remains,
    so a fallback read after a network failure can never serve (or
    re-promote) a value that network writes have moved past."""
    cluster = make_cluster()
    backend = DictBackend()
    store = HybridStore(cluster.agent("H0"), backend,
                        policy=HybridPolicy(promote_after_reads=1))
    client = HybridKVClient(store)
    client.write("k", b"v1").result()
    client.read("k").result()
    cluster.run(until=cluster.sim.now + 0.1)   # promotion completes
    assert store.in_network("k")
    assert backend.read("k") is None
    client.write("k", b"v2").result()          # network-only write
    assert backend.read("k") is None
    # Losing the placement entry falls back to the servers, which now
    # correctly report the key absent instead of a stale b"v1".
    store._network_keys.discard(b"k")
    assert client.read("k").result().not_found
    # The sync store path removes the copy too.
    sync_store = HybridStore(cluster.agent("H1"), DictBackend(),
                             policy=HybridPolicy(promote_after_reads=1))
    sync_store.write("s", b"v1")
    sync_store.read("s")
    assert sync_store.in_network("s")
    assert sync_store.backend.read("s") is None


def test_async_client_demotes_oversized_writes():
    cluster = make_cluster()
    store = HybridStore(cluster.agent("H0"), DictBackend())
    client = HybridKVClient(store)
    store.policy.pin("growing")
    client.write("growing", b"tiny").result()
    assert store.in_network("growing")
    store.policy.pinned.clear()
    big = bytes(MAX_PROTOTYPE_VALUE_BYTES + 8)
    result = client.write("growing", big).result()
    assert result.ok
    assert not store.in_network("growing")
    assert store.stats.demotions == 1
    assert client.read("growing").result().value == big


def test_async_client_cas_requires_network_residency():
    cluster = make_cluster()
    store = HybridStore(cluster.agent("H0"), DictBackend())
    client = HybridKVClient(store)
    client.write("server-only", b"v").result()
    result = client.cas("server-only", b"v", b"w").result()
    assert not result.ok and "network-resident" in result.error
    store.policy.pin("lock")
    client.write("lock", b"").result()
    assert client.cas("lock", b"", b"owner").result().ok
    assert not client.cas("lock", b"", b"thief").result().ok


def test_async_client_delete_clears_both_tiers():
    cluster = make_cluster()
    store = HybridStore(cluster.agent("H0"), DictBackend())
    client = HybridKVClient(store)
    store.policy.pin("net-key")
    client.write("net-key", b"x").result()
    client.write("srv-key", b"y").result()
    assert client.delete("net-key").result().ok
    assert client.delete("srv-key").result().ok
    missing = client.delete("srv-key").result()
    assert not missing.ok and missing.not_found
    assert client.read("srv-key").result().not_found
    assert cluster.controller.total_items() == 0


def test_zookeeper_backend_adapter():
    from repro.baselines import ZooKeeperClient, ZooKeeperConfig, build_zookeeper_ensemble
    from repro.netsim.host import HostConfig
    from repro.netsim.routing import install_shortest_path_routes
    from repro.netsim.topology import build_testbed

    topo = build_testbed(host_config=HostConfig(stack_delay=40e-6, nic_pps=None))
    install_shortest_path_routes(topo)
    hosts = [topo.hosts[f"H{i}"] for i in range(4)]
    ensemble = build_zookeeper_ensemble(hosts[:3],
                                        ZooKeeperConfig(server_msgs_per_sec=None))
    backend = ZooKeeperBackend(ZooKeeperClient(hosts[3], ensemble))
    assert backend.read("missing") is None
    assert backend.write("k1", b"v1")
    assert backend.read("k1") == b"v1"
    assert backend.write("k1", b"v2")
    assert backend.read("k1") == b"v2"
    assert backend.delete("k1")
    assert backend.read("k1") is None
