"""Tests for the hybrid NetChain-accelerator store (Section 6)."""

from __future__ import annotations

import pytest

from repro.core.hybrid import DictBackend, HybridPolicy, HybridStore, ZooKeeperBackend
from tests.conftest import make_cluster


@pytest.fixture
def hybrid():
    cluster = make_cluster()
    backend = DictBackend()
    policy = HybridPolicy(max_network_value_bytes=64, promote_after_reads=3)
    store = HybridStore(cluster.agent("H0"), backend, policy=policy)
    return cluster, backend, store


def test_pinned_keys_live_in_the_network(hybrid):
    cluster, backend, store = hybrid
    store.policy.pin("cfg:leader")
    assert store.write("cfg:leader", b"H0")
    assert store.in_network("cfg:leader")
    assert store.read("cfg:leader") == b"H0"
    assert store.stats.network_writes == 1
    assert store.stats.network_reads == 1
    assert backend.read("cfg:leader") is None


def test_unpinned_small_keys_start_on_servers(hybrid):
    cluster, backend, store = hybrid
    assert store.write("cold-key", b"value")
    assert not store.in_network("cold-key")
    assert backend.read("cold-key") == b"value"
    assert store.read("cold-key") == b"value"
    assert store.stats.server_reads == 1


def test_large_values_always_go_to_servers(hybrid):
    cluster, backend, store = hybrid
    big = bytes(500)
    assert store.write("big-object", big)
    assert not store.in_network("big-object")
    assert store.read("big-object") == big


def test_pinned_key_with_oversized_value_rejected(hybrid):
    cluster, backend, store = hybrid
    store.policy.pin("cfg:huge")
    with pytest.raises(ValueError):
        store.write("cfg:huge", bytes(128))


def test_hot_keys_promoted_after_repeated_reads(hybrid):
    cluster, backend, store = hybrid
    store.write("hot", b"small")
    for _ in range(store.policy.promote_after_reads):
        assert store.read("hot") == b"small"
    assert store.in_network("hot")
    assert store.stats.promotions == 1
    # Subsequent reads are served by the network tier.
    before = store.stats.network_reads
    assert store.read("hot") == b"small"
    assert store.stats.network_reads == before + 1


def test_value_growth_demotes_key_to_servers(hybrid):
    cluster, backend, store = hybrid
    store.policy.pin("growing")
    store.write("growing", b"tiny")
    assert store.in_network("growing")
    store.policy.pinned.clear()
    big = bytes(200)
    assert store.write("growing", big)
    assert not store.in_network("growing")
    assert store.stats.demotions == 1
    assert store.read("growing") == big


def test_delete_removes_from_both_tiers(hybrid):
    cluster, backend, store = hybrid
    store.policy.pin("net-key")
    store.write("net-key", b"x")
    store.write("srv-key", b"y")
    assert store.delete("net-key")
    assert store.delete("srv-key")
    assert not store.delete("srv-key")
    assert store.read("net-key") is None
    assert store.read("srv-key") is None
    assert cluster.controller.total_items() == 0


def test_cas_only_on_network_resident_keys(hybrid):
    cluster, backend, store = hybrid
    store.policy.pin("lock:1")
    store.write("lock:1", b"")
    assert store.cas("lock:1", b"", b"owner")
    assert not store.cas("lock:1", b"", b"other")
    store.write("server-only", b"v")
    with pytest.raises(ValueError):
        store.cas("server-only", b"v", b"w")


def test_network_fraction_statistic(hybrid):
    cluster, backend, store = hybrid
    store.policy.pin("hot")
    store.write("hot", b"1")
    store.write("cold", b"2")
    store.read("hot")
    store.read("cold")
    assert 0.0 < store.stats.network_fraction() < 1.0


def test_zookeeper_backend_adapter():
    from repro.baselines import ZooKeeperClient, ZooKeeperConfig, build_zookeeper_ensemble
    from repro.netsim.host import HostConfig
    from repro.netsim.routing import install_shortest_path_routes
    from repro.netsim.topology import build_testbed

    topo = build_testbed(host_config=HostConfig(stack_delay=40e-6, nic_pps=None))
    install_shortest_path_routes(topo)
    hosts = [topo.hosts[f"H{i}"] for i in range(4)]
    ensemble = build_zookeeper_ensemble(hosts[:3],
                                        ZooKeeperConfig(server_msgs_per_sec=None))
    backend = ZooKeeperBackend(ZooKeeperClient(hosts[3], ensemble))
    assert backend.read("missing") is None
    assert backend.write("k1", b"v1")
    assert backend.read("k1") == b"v1"
    assert backend.write("k1", b"v2")
    assert backend.read("k1") == b"v2"
    assert backend.delete("k1")
    assert backend.read("k1") is None
