"""Shared fixtures for the NetChain reproduction test suite."""

from __future__ import annotations

import os

import pytest

from repro.core import ClusterConfig, NetChainCluster
from repro.core.controller import ControllerConfig


def fault_seeds() -> list:
    """Seeds the fault-scenario matrix (tests/test_faults_*) runs under.

    Local runs default to a single seed to keep the tier-1 suite fast; CI
    sets ``FAULT_SEEDS`` (comma-separated) to fan the same scenarios out
    over a fixed seed matrix.
    """
    env = os.environ.get("FAULT_SEEDS", "").strip()
    if env:
        return [int(part) for part in env.replace(",", " ").split()]
    return [0]


def make_cluster(vnodes_per_switch: int = 4, store_slots: int = 2048,
                 scale: float = 1000.0, seed: int = 0,
                 **controller_overrides) -> NetChainCluster:
    """A small, fast NetChain cluster on the 4-switch testbed."""
    controller_config = ControllerConfig(vnodes_per_switch=vnodes_per_switch,
                                         store_slots=store_slots, seed=seed,
                                         **controller_overrides)
    cluster_config = ClusterConfig(scale=scale, vnodes_per_switch=vnodes_per_switch,
                                   store_slots=store_slots, seed=seed)
    return NetChainCluster(cluster_config, controller_config=controller_config)


@pytest.fixture
def cluster() -> NetChainCluster:
    """A ready-to-use testbed cluster."""
    return make_cluster()


@pytest.fixture
def agent(cluster: NetChainCluster):
    """The client agent on H0 of the testbed cluster."""
    return cluster.agent("H0")
