"""Unit tests for the per-switch key-value storage (Figure 3)."""

from __future__ import annotations

import pytest

from repro.core.kvstore import KVStoreConfig, StoreFullError, SwitchKVStore, ValueTooLargeError
from repro.netsim.engine import Simulator
from repro.netsim.switch import Switch, SwitchConfig


def make_store(slots=64, stages=8, stage_bytes=16, sram=None, allow_recirculation=False):
    switch = Switch(Simulator(), "S0", "10.0.0.1",
                    config=SwitchConfig(value_stages=stages, stage_value_bytes=stage_bytes,
                                        sram_bytes=sram))
    return SwitchKVStore(switch, config=KVStoreConfig(slots=slots,
                                                      allow_recirculation=allow_recirculation))


def test_insert_and_lookup():
    store = make_store()
    loc = store.insert_key("alpha")
    assert store.lookup("alpha") == loc
    assert store.lookup("beta") is None
    assert store.used_slots() == 1
    assert store.free_slots() == 63


def test_insert_is_idempotent():
    store = make_store()
    loc1 = store.insert_key("alpha")
    loc2 = store.insert_key("alpha")
    assert loc1 == loc2
    assert store.used_slots() == 1


def test_write_and_read_roundtrip():
    store = make_store()
    loc = store.insert_key("alpha")
    store.write_loc(loc, b"hello world", seq=3, session=1)
    item = store.read_loc(loc)
    assert item.value == b"hello world"
    assert item.seq == 3
    assert item.session == 1
    assert item.valid
    assert item.version() == (1, 3)


def test_value_striped_across_stages():
    store = make_store(stages=8, stage_bytes=16)
    loc = store.insert_key("k")
    value = bytes(range(100))
    store.write_loc(loc, value, seq=1)
    # The raw stage arrays hold 16-byte chunks.
    assert store._stages[0].read(loc) == value[:16]
    assert store._stages[5].read(loc) == value[80:96]
    assert store._stages[6].read(loc) == value[96:100]
    assert store.read_loc(loc).value == value


def test_overwrite_shorter_value_truncates_correctly():
    store = make_store()
    loc = store.insert_key("k")
    store.write_loc(loc, bytes(100), seq=1)
    store.write_loc(loc, b"tiny", seq=2)
    assert store.read_loc(loc).value == b"tiny"


def test_read_convenience_and_missing_key():
    store = make_store()
    store.insert_key("k")
    assert store.read("k") is not None
    assert store.read("missing") is None


def test_store_full_error():
    store = make_store(slots=2)
    store.insert_key("a")
    store.insert_key("b")
    with pytest.raises(StoreFullError):
        store.insert_key("c")
    assert store.capacity == 2


def test_remove_key_frees_slot():
    store = make_store(slots=2)
    store.insert_key("a")
    store.insert_key("b")
    assert store.remove_key("a")
    assert not store.remove_key("a")
    store.insert_key("c")
    assert store.used_slots() == 2
    assert store.lookup("a") is None


def test_invalidate_marks_item_invalid():
    store = make_store()
    loc = store.insert_key("k")
    store.write_loc(loc, b"v", seq=1)
    assert store.invalidate("k")
    assert not store.read_loc(loc).valid
    assert not store.invalidate("missing")


def test_value_too_large_rejected():
    store = make_store(stages=2, stage_bytes=16)
    loc = store.insert_key("k")
    with pytest.raises(ValueTooLargeError):
        store.write_loc(loc, bytes(33), seq=1)
    assert store.max_value_bytes() == 32


def test_recirculation_gate():
    # One pass covers 32 bytes; a 40-byte value needs recirculation.
    no_recirc = make_store(stages=8, stage_bytes=16)
    no_recirc.switch.config.value_stages = 2
    assert no_recirc.switch.max_value_bytes_per_pass() == 32
    loc = no_recirc.insert_key("k")
    with pytest.raises(ValueTooLargeError):
        no_recirc.write_loc(loc, bytes(40), seq=1)

    allowed = make_store(stages=8, stage_bytes=16, allow_recirculation=True)
    allowed.switch.config.value_stages = 2
    loc = allowed.insert_key("k")
    allowed.write_loc(loc, bytes(40), seq=1)
    assert allowed.read_loc(loc).value == bytes(40)


def test_passes_required():
    store = make_store(stages=8, stage_bytes=16)
    assert store.passes_required(64) == 1
    assert store.passes_required(128) == 1
    assert store.passes_required(129) == 2
    assert store.passes_required(400) == 4


def test_sram_accounting_matches_prototype_sizing():
    # Section 7: 64K slots x 16 bytes x 8 stages = 8 MB of value storage.
    store = make_store(slots=65536, stages=8, stage_bytes=16)
    value_bytes = sum(array.size_bytes() for array in store._stages)
    assert value_bytes == 8 * 1024 * 1024
    assert store.sram_bytes_used() >= value_bytes


def test_sram_budget_enforced_for_oversized_store():
    from repro.netsim.registers import RegisterAllocationError
    with pytest.raises(RegisterAllocationError):
        make_store(slots=65536, sram=1024 * 1024)  # 1 MB budget cannot hold 8 MB


def test_export_import_items():
    source = make_store()
    destination = make_store()
    for i in range(5):
        loc = source.insert_key(f"k{i}")
        source.write_loc(loc, f"value{i}".encode(), seq=i + 1, session=1)
    items = source.export_items()
    assert len(items) == 5
    copied = destination.import_items(items)
    assert copied > 0
    for i in range(5):
        item = destination.read(f"k{i}")
        assert item.value == f"value{i}".encode()
        assert item.seq == i + 1


def test_export_items_subset():
    store = make_store()
    for i in range(4):
        store.insert_key(f"k{i}")
    subset = store.export_items(keys=[b"k1".ljust(16, b"\x00"), b"k3".ljust(16, b"\x00")])
    assert len(subset) == 2


def test_keys_listing():
    store = make_store()
    store.insert_key("a")
    store.insert_key("b")
    assert len(list(store.keys())) == 2
