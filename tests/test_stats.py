"""Unit tests for the measurement helpers."""

from __future__ import annotations

import pytest

from repro.netsim.stats import (
    IntervalCounter,
    LatencyRecorder,
    ThroughputMeasurement,
    ThroughputTimeSeries,
)


def test_latency_recorder_statistics():
    recorder = LatencyRecorder()
    for value in [1.0, 2.0, 3.0, 4.0, 5.0]:
        recorder.record(value)
    assert recorder.count() == 5
    assert recorder.mean() == pytest.approx(3.0)
    assert recorder.median() == pytest.approx(3.0)
    assert recorder.percentile(100) == pytest.approx(5.0)
    assert recorder.p99() == pytest.approx(5.0)
    recorder.clear()
    assert recorder.count() == 0
    assert recorder.mean() == 0.0
    assert recorder.percentile(50) == 0.0


def test_latency_percentile_bounds():
    recorder = LatencyRecorder()
    for value in range(1, 101):
        recorder.record(float(value))
    assert recorder.percentile(1) == pytest.approx(1.0)
    assert recorder.percentile(50) == pytest.approx(50.0)
    assert recorder.percentile(99) == pytest.approx(99.0)


def test_throughput_time_series_bins_and_gaps():
    series = ThroughputTimeSeries(bin_width=1.0)
    series.record(0.5)
    series.record(0.7)
    series.record(2.5)
    data = dict(series.series())
    assert data[0.0] == 2.0
    assert data[1.0] == 0.0
    assert data[2.0] == 1.0
    assert series.total() == 3
    assert series.rate_at(0.9) == 2.0
    assert series.rate_at(5.0) == 0.0


def test_throughput_time_series_empty():
    assert ThroughputTimeSeries().series() == []


def test_throughput_measurement_scaling():
    measurement = ThroughputMeasurement(completed=500, duration=0.5, scale=1000.0)
    assert measurement.qps() == pytest.approx(1000.0)
    assert measurement.scaled_qps() == pytest.approx(1e6)
    assert measurement.scaled_mqps() == pytest.approx(1.0)
    assert ThroughputMeasurement(completed=5, duration=0.0).qps() == 0.0


def test_interval_counter_window_queries():
    counter = IntervalCounter()
    for t in [0.1, 0.2, 1.5, 2.5, 2.6]:
        counter.record(t)
    assert counter.total() == 5
    assert counter.count_between(0.0, 1.0) == 2
    assert counter.count_between(1.0, 3.0) == 3
    assert counter.rate_between(0.0, 1.0) == pytest.approx(2.0)
    assert counter.rate_between(2.0, 2.0) == 0.0
