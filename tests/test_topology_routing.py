"""Unit tests for topology builders and the underlay routing protocol."""

from __future__ import annotations

import networkx as nx
import pytest

from repro.netsim.host import Host
from repro.netsim.packet import Packet
from repro.netsim.routing import (
    hop_count,
    install_shortest_path_routes,
    path_between,
    reroute_around_failures,
    switch_hops_on_path,
)
from repro.netsim.switch import Switch
from repro.netsim.topology import Topology, build_line, build_spine_leaf, build_testbed


def test_testbed_matches_figure_8():
    topo = build_testbed()
    assert set(topo.switches) == {"S0", "S1", "S2", "S3"}
    assert set(topo.hosts) == {"H0", "H1", "H2", "H3"}
    # Ring S0-S1-S2-S3-S0.
    assert topo.graph.has_edge("S0", "S1")
    assert topo.graph.has_edge("S1", "S2")
    assert topo.graph.has_edge("S2", "S3")
    assert topo.graph.has_edge("S3", "S0")
    assert not topo.graph.has_edge("S0", "S2")
    # Hosts attach to S0.
    for host in topo.hosts:
        assert topo.graph.has_edge(host, "S0")


def test_spine_leaf_connectivity():
    topo = build_spine_leaf(num_spines=2, num_leaves=4, hosts_per_leaf=2)
    assert len(topo.switches) == 6
    assert len(topo.hosts) == 8
    for leaf in range(4):
        for spine in range(2):
            assert topo.graph.has_edge(f"leaf{leaf}", f"spine{spine}")
    # No leaf-leaf or spine-spine links.
    assert not topo.graph.has_edge("leaf0", "leaf1")
    assert not topo.graph.has_edge("spine0", "spine1")


def test_line_topology_with_hosts():
    topo = build_line(3, hosts_at={0: 1, 2: 2})
    assert len(topo.switches) == 3
    assert len(topo.hosts) == 3
    assert hop_count(topo, "S0", "S2") == 2


def test_unique_ips_and_lookup():
    topo = build_testbed()
    ips = [node.ip for node in topo.all_nodes()]
    assert len(ips) == len(set(ips))
    for node in topo.all_nodes():
        assert topo.node_by_ip(node.ip) is node
    assert topo.node_by_ip("1.2.3.4") is None


def test_duplicate_node_names_rejected():
    topo = Topology()
    topo.add_switch("X")
    with pytest.raises(ValueError):
        topo.add_switch("X")
    with pytest.raises(ValueError):
        topo.add_host("X")


def test_node_lookup_by_name():
    topo = build_testbed()
    assert isinstance(topo.node("S0"), Switch)
    assert isinstance(topo.node("H0"), Host)
    with pytest.raises(KeyError):
        topo.node("nope")


def test_link_between():
    topo = build_testbed()
    assert topo.link_between(topo.node("S0"), topo.node("S1")) is not None
    assert topo.link_between(topo.node("S0"), topo.node("S2")) is None


def test_set_loss_rate_targets_switches():
    topo = build_testbed()
    topo.set_loss_rate(0.1)
    assert all(sw.injected_loss_rate == 0.1 for sw in topo.switches.values())
    topo.set_loss_rate(0.5, switches=["S1"])
    assert topo.switches["S1"].injected_loss_rate == 0.5
    assert topo.switches["S0"].injected_loss_rate == 0.1


def test_shortest_path_routes_deliver_end_to_end():
    topo = build_testbed()
    install_shortest_path_routes(topo)
    h0, h1 = topo.hosts["H0"], topo.hosts["H1"]
    received = []
    h1.default_handler = received.append
    packet = Packet()
    packet.ip.src_ip = h0.ip
    packet.ip.dst_ip = h1.ip
    h0.send(packet)
    topo.run(until=1.0)
    assert len(received) == 1


def test_routes_cover_all_destinations():
    topo = build_testbed()
    install_shortest_path_routes(topo)
    s2 = topo.switches["S2"]
    # S2 must know how to reach every other node.
    for node in topo.all_nodes():
        if node is s2:
            continue
        assert node.ip in s2.forwarding_table


def test_path_and_hop_helpers():
    topo = build_testbed()
    assert path_between(topo, "H0", "S2") in (["H0", "S0", "S1", "S2"],
                                              ["H0", "S0", "S3", "S2"])
    assert hop_count(topo, "H0", "S0") == 1
    assert switch_hops_on_path(topo, "H0", "S2")[0] == "S0"


def test_reroute_around_failed_switch():
    topo = build_testbed()
    install_shortest_path_routes(topo)
    s0 = topo.switches["S0"]
    s2 = topo.switches["S2"]
    # With all switches alive the S0 -> S2 route may go via S1.
    reroute_around_failures(topo, ["S1"])
    next_hop_port = s0.forwarding_table[s2.ip]
    assert next_hop_port.peer().node.name == "S3"
    # Routes *toward* the failed switch are preserved so neighbours can
    # intercept (Algorithm 2 relies on this).
    s1_ip = topo.switches["S1"].ip
    assert s1_ip in s0.forwarding_table


def test_excluded_path_raises_when_disconnected():
    topo = build_line(3)
    install_shortest_path_routes(topo)
    with pytest.raises(nx.NetworkXNoPath):
        path_between(topo, "S0", "S2", exclude=["S1"])
