"""Tests for the adaptive hot-key tier (repro.core.hotkeys).

Covers the three layers separately -- sketch detection accuracy, the
manager's widen/narrow policy against a live cluster, and the client-side
coalescing cache -- plus the end-to-end scenario properties the tier must
preserve (linearizability and replay determinism with the tier on).
"""

from __future__ import annotations

import pytest

from repro.core import NetChainCluster
from repro.core.hotkeys import (
    ClientReadCache,
    HotKeyManager,
    HotKeySketch,
    HotKeyTierConfig,
    SketchConfig,
)
from repro.core.hybrid import HybridStore
from repro.core.protocol import normalize_key
from repro.deploy import DeploymentSpec
from repro.deploy.base import available_backends, build_deployment, get_backend
from repro.deploy.scenario import ScenarioChecks, WorkloadSpec, run_scenario
from repro.netsim.registers import RegisterAllocationError, RegisterFile
from tests.conftest import make_cluster


# --------------------------------------------------------------------- #
# Detection: the count-min sketch + top-k table.
# --------------------------------------------------------------------- #

def test_sketch_estimate_never_underestimates():
    sketch = HotKeySketch(SketchConfig(rows=2, width=16, topk=4))
    truth = {}
    for i in range(200):
        key = b"k%03d" % (i % 23)
        sketch.record(key)
        truth[key] = truth.get(key, 0) + 1
    for key, count in truth.items():
        assert sketch.estimate(key) >= count


def test_sketch_recall_and_precision_on_skewed_stream():
    sketch = HotKeySketch(SketchConfig(rows=3, width=512, topk=8))
    hot = [b"hot%d" % i for i in range(4)]
    cold = [b"cold%02d" % i for i in range(60)]
    for key in hot:
        sketch.record(key, count=100)
    for key in cold:
        sketch.record(key, count=2)
    top = sketch.heavy_hitters()
    top_keys = [key for key, _count in top[:4]]
    # Recall: every truly hot key surfaces in the top-k (CMS never
    # underestimates, so a 100-count key cannot hide behind 2-count keys).
    assert set(top_keys) == set(hot)
    # Precision at the hot/cold margin: estimated counts of the hot keys
    # stay within the CMS overestimate bound (small here by sizing).
    for _key, count in top[:4]:
        assert 100 <= count <= 104


def test_cold_keys_stay_below_a_hot_threshold():
    # The false-positive guard behind "a cold key is never widened": with
    # a paper-sized population and a per-poll threshold, uniform noise
    # cannot promote any key.
    sketch = HotKeySketch()
    for i in range(1000):
        sketch.record(b"u%04d" % (i % 500), count=1)
    assert all(count < 16 for _key, count in sketch.heavy_hitters())


def test_sketch_reset_and_forget():
    sketch = HotKeySketch(SketchConfig(rows=2, width=64, topk=4))
    sketch.record(b"a", count=10)
    sketch.record(b"b", count=3)
    sketch.forget(b"a")
    assert sketch.estimate(b"a") == 0
    assert sketch.estimate(b"b") >= 3
    assert b"a" not in dict(sketch.heavy_hitters())
    sketch.reset()
    assert sketch.estimate(b"b") == 0
    assert sketch.heavy_hitters() == []
    assert sketch.updates == 0


def test_sketch_deterministic_across_instances():
    stream = [b"k%02d" % ((7 * i) % 13) for i in range(300)]
    first = HotKeySketch(SketchConfig(rows=3, width=32, topk=4))
    second = HotKeySketch(SketchConfig(rows=3, width=32, topk=4))
    for key in stream:
        first.record(key)
        second.record(key)
    assert first.heavy_hitters() == second.heavy_hitters()


def test_sketch_register_backing_charges_and_frees_sram():
    registers = RegisterFile(sram_bytes=64 * 1024)
    before = registers.allocated_bytes()
    config = SketchConfig(rows=2, width=128, counter_bytes=4, topk=4)
    sketch = HotKeySketch(config, registers=registers, name="t")
    # 2 rows of 128 x 4B counters plus the top-k key/count arrays.
    assert registers.allocated_bytes() > before
    with pytest.raises(ValueError):
        HotKeySketch(config, registers=registers, name="t")  # duplicate names
    sketch.free()
    assert registers.allocated_bytes() == before


def test_sketch_register_backing_respects_sram_budget():
    registers = RegisterFile(sram_bytes=512)
    with pytest.raises(RegisterAllocationError):
        HotKeySketch(SketchConfig(rows=3, width=512), registers=registers)


def test_hybrid_store_shares_the_sketch_detector():
    from repro.core.hybrid import DictBackend
    cluster = make_cluster()
    store = HybridStore(cluster.agent("H0"), DictBackend())
    assert isinstance(store.popularity, HotKeySketch)


# --------------------------------------------------------------------- #
# Policy configuration.
# --------------------------------------------------------------------- #

def test_tier_config_from_options():
    assert HotKeyTierConfig.from_options(None) == HotKeyTierConfig()
    config = HotKeyTierConfig(hot_threshold=5)
    assert HotKeyTierConfig.from_options(config) is config
    built = HotKeyTierConfig.from_options(
        {"hot_threshold": 7, "sketch": {"rows": 2, "width": 64}})
    assert built.hot_threshold == 7
    assert built.sketch == SketchConfig(rows=2, width=64)
    with pytest.raises(ValueError):
        HotKeyTierConfig.from_options({"no_such_knob": 1})


# --------------------------------------------------------------------- #
# Reaction: the manager against a live cluster.
# --------------------------------------------------------------------- #

_FAST_TIER = dict(poll_interval=2e-3, hot_threshold=5, widen_latency=1e-3,
                  cooldown_polls=2, client_cache=False)


def _tier_cluster(**overrides) -> NetChainCluster:
    cluster = make_cluster()
    cluster.populate(16)
    options = dict(_FAST_TIER)
    options.update(overrides)
    cluster.enable_hotkey_tier(options)
    return cluster


def _drive_reads(cluster, agent, key: str, interval: float, duration: float) -> None:
    cancel = cluster.sim.every(interval, lambda: agent.read(key))
    cluster.run(until=cluster.sim.now + duration)
    cancel()


def test_hot_key_widens_and_rotates_reads():
    cluster = _tier_cluster()
    manager = cluster.controller.hotkey_manager
    agent = cluster.agent("H0")
    before = {name: cluster.controller.programs[name].stats.reads
              for name in cluster.controller.members}
    _drive_reads(cluster, agent, "k00000000", interval=1e-4, duration=0.05)
    raw = normalize_key("k00000000")
    assert manager.stats.widened >= 1
    assert raw in manager.hot_routes
    route = manager.hot_routes[raw]
    assert len(route.switches) > cluster.config.replication
    # Rotation: after widening, the key's reads land on several switches.
    served = [name for name in cluster.controller.members
              if cluster.controller.programs[name].stats.reads
              - before[name] > 10]
    assert len(served) >= 2
    # Reads through the wide route still return the stored value.
    assert agent.read_sync("k00000000").value == bytes(64)


def test_cold_keys_are_never_widened():
    cluster = _tier_cluster()
    manager = cluster.controller.hotkey_manager
    agent = cluster.agent("H0")
    # Uniform trickle over all 16 keys: nobody crosses the threshold.
    keys = [f"k{i:08d}" for i in range(16)]
    state = {"i": 0}

    def read_next():
        agent.read(keys[state["i"] % len(keys)])
        state["i"] += 1

    cancel = cluster.sim.every(1e-3, read_next)
    cluster.run(until=cluster.sim.now + 0.05)
    cancel()
    assert manager.stats.widened == 0
    assert manager.hot_routes == {}


def test_hot_route_narrows_on_cooldown():
    cluster = _tier_cluster()
    controller = cluster.controller
    manager = controller.hotkey_manager
    _drive_reads(cluster, cluster.agent("H0"), "k00000000",
                 interval=1e-4, duration=0.03)
    raw = normalize_key("k00000000")
    assert raw in manager.hot_routes
    extras = list(manager.hot_routes[raw].extras)
    assert extras
    epoch_before = controller.epochs.get(manager.hot_routes[raw].vgroup, 0)
    # Stop the traffic; the cooldown polls must narrow the route and
    # reclaim the extra replicas' slots.
    cluster.run(until=cluster.sim.now + 0.05)
    assert raw not in manager.hot_routes
    assert manager.stats.narrowed >= 1
    for name in extras:
        assert controller.stores[name].lookup(raw) is None
    vgroup = controller.ring.vgroup_for_key(raw)
    assert controller.epochs.get(vgroup, 0) > epoch_before
    # The key still reads correctly through its base chain.
    assert cluster.agent("H0").read_sync("k00000000").ok


def test_writes_remain_visible_through_a_wide_route():
    cluster = _tier_cluster()
    manager = cluster.controller.hotkey_manager
    agent = cluster.agent("H0")
    _drive_reads(cluster, agent, "k00000000", interval=1e-4, duration=0.03)
    assert normalize_key("k00000000") in manager.hot_routes
    assert agent.write_sync("k00000000", b"fresh").ok
    # Every rotated read -- whichever replica serves it -- must return the
    # committed value (the clean/dirty gate forwards until CLEAN lands).
    values = {agent.read_sync("k00000000").value for _ in range(12)}
    assert values == {b"fresh"}


def test_widen_refuses_unknown_keys():
    cluster = _tier_cluster()
    manager = cluster.controller.hotkey_manager
    assert manager.widen("never-inserted") is False
    assert manager.stats.skipped == 1
    assert manager.hot_routes == {}


def test_switch_failure_narrows_affected_routes():
    cluster = _tier_cluster()
    controller = cluster.controller
    manager = controller.hotkey_manager
    _drive_reads(cluster, cluster.agent("H0"), "k00000000",
                 interval=1e-4, duration=0.03)
    raw = normalize_key("k00000000")
    assert raw in manager.hot_routes
    failed = manager.hot_routes[raw].switches[-1]
    controller.fast_failover(failed)
    assert raw not in manager.hot_routes


def test_garbage_collect_forgets_widened_keys():
    cluster = _tier_cluster()
    controller = cluster.controller
    manager = controller.hotkey_manager
    agent = cluster.agent("H0")
    _drive_reads(cluster, agent, "k00000000", interval=1e-4, duration=0.03)
    raw = normalize_key("k00000000")
    assert raw in manager.hot_routes
    assert agent.delete_sync("k00000000").ok
    controller.garbage_collect("k00000000")
    assert raw not in manager.hot_routes


def test_manager_attach_detach_lifecycle():
    cluster = make_cluster()
    cluster.populate(4)
    manager = cluster.enable_hotkey_tier({"client_cache": True})
    controller = cluster.controller
    assert controller.hotkey_manager is manager
    assert all(controller.programs[name].hotkeys is not None
               for name in controller.members)
    assert cluster.agent("H0").read_cache is not None
    with pytest.raises(ValueError):
        HotKeyManager(controller)
    allocated = {name: controller.programs[name].switch.registers.allocated_bytes()
                 for name in controller.members}
    manager.stop()
    assert controller.hotkey_manager is None
    for name in controller.members:
        assert controller.programs[name].hotkeys is None
        # stop() released the sketch register arrays back to the SRAM pool.
        assert (controller.programs[name].switch.registers.allocated_bytes()
                < allocated[name])


# --------------------------------------------------------------------- #
# Client tier: the coalescing read cache.
# --------------------------------------------------------------------- #

def test_cache_coalesces_concurrent_reads():
    cluster = make_cluster()
    cluster.populate(4)
    agent = cluster.agent("H0")
    cache = ClientReadCache(cluster.controller)
    agent.read_cache = cache
    futures = [agent.read("k00000000") for _ in range(10)]
    cluster.run(until=cluster.sim.now + 0.01)
    assert [f.result(0).value for f in futures] == [bytes(64)] * 10
    assert cache.stats.network_reads == 1
    assert cache.stats.coalesced == 9
    assert not cache._inflight


def test_cache_does_not_coalesce_distinct_keys():
    cluster = make_cluster()
    cluster.populate(4)
    agent = cluster.agent("H0")
    cache = ClientReadCache(cluster.controller)
    agent.read_cache = cache
    futures = [agent.read(f"k{i:08d}") for i in range(4)]
    cluster.run(until=cluster.sim.now + 0.01)
    assert all(f.result(0).ok for f in futures)
    assert cache.stats.network_reads == 4
    assert cache.stats.coalesced == 0


def test_cache_epoch_invalidation_reissues_waiters():
    cluster = make_cluster()
    cluster.populate(4)
    controller = cluster.controller
    agent = cluster.agent("H0")
    cache = ClientReadCache(controller)
    agent.read_cache = cache
    futures = [agent.read("k00000000") for _ in range(3)]
    # Reconfigure the key's group while the read is in flight: the reply
    # is stale by the epoch rule, so the coalesced waiters must re-fetch.
    vgroup = controller.ring.vgroup_for_key(normalize_key("k00000000"))
    controller.bump_group_epoch(vgroup)
    cluster.run(until=cluster.sim.now + 0.02)
    assert [f.result(0).ok for f in futures] == [True] * 3
    assert cache.stats.epoch_invalidations == 1
    assert cache.stats.network_reads == 2  # the original + one re-issue


def test_cache_callbacks_fire_per_waiter():
    cluster = make_cluster()
    cluster.populate(4)
    agent = cluster.agent("H0")
    agent.read_cache = ClientReadCache(cluster.controller)
    results = []
    for _ in range(5):
        agent.read("k00000000").then(results.append)
    cluster.run(until=cluster.sim.now + 0.01)
    assert len(results) == 5
    assert all(r.ok for r in results)


# --------------------------------------------------------------------- #
# End to end: scenarios with the tier on.
# --------------------------------------------------------------------- #

# Calibration note: the linearizability checker's per-key search is
# super-linear in the ops concentrated on one key, so the skewed checks
# run a short window over a 64-key store (the ablation benchmark measures
# throughput over longer windows with the checker off).
_SKEWED = WorkloadSpec(duration=0.05, write_ratio=0.1, zipf_theta=0.99,
                       num_clients=4, concurrency=12)


def _tier_spec(**overrides) -> DeploymentSpec:
    options = {"hotkey_tier": {"hot_threshold": 16}}
    return DeploymentSpec(backend="netchain", store_size=64, seed=7,
                          hotkey_tier=True, options=options, **overrides)


def test_skewed_scenario_with_tier_is_linearizable():
    result = run_scenario(_tier_spec(), _SKEWED)
    assert result.ok(), result.failures
    assert result.hotkey_tier_active
    assert result.linearizability is not None
    assert not result.linearizability.exhausted_keys()


def test_skewed_scenario_with_tier_replays_identically():
    first = run_scenario(_tier_spec(), _SKEWED)
    second = run_scenario(_tier_spec(), _SKEWED)
    assert first.ok() and second.ok()
    signature = first.signature()
    assert signature and signature == second.signature()


def test_tier_improves_skewed_throughput():
    # The ablation benchmark measures this at a saturating load; the test
    # only pins the direction at a modest one (coalescing alone helps).
    checks = ScenarioChecks(linearizability=False)
    off = run_scenario(DeploymentSpec(backend="netchain", store_size=32,
                                      seed=7), _SKEWED, checks=checks)
    on = run_scenario(_tier_spec(), _SKEWED, checks=checks)
    assert on.success_qps > off.success_qps


def test_tier_flag_runs_across_the_backend_matrix():
    workload = WorkloadSpec(duration=0.05, write_ratio=0.2, zipf_theta=0.99)
    for name in available_backends():
        spec = DeploymentSpec(backend=name, store_size=8, seed=3,
                              hotkey_tier=True)
        result = run_scenario(spec, workload)
        assert result.ok(), (name, result.failures)
        supports = get_backend(name).capabilities.supports_hotkey_tier
        assert result.hotkey_tier_active == supports


def test_tier_teardown_leaves_no_manager():
    result = run_scenario(_tier_spec(), _SKEWED,
                          checks=ScenarioChecks(linearizability=False))
    deployment = result.deployment
    assert deployment.hotkey_manager is None
    assert deployment.cluster.controller.hotkey_manager is None
