"""Unit tests for the host model (stack delay, NIC pacing, sockets)."""

from __future__ import annotations

import pytest

from repro.netsim.engine import Simulator
from repro.netsim.host import Host, HostConfig, dpdk_host_config, kernel_host_config
from repro.netsim.link import connect
from repro.netsim.node import Node
from repro.netsim.packet import Packet, UDPHeader


class Sink(Node):
    def __init__(self, sim, name, ip):
        super().__init__(sim, name, ip)
        self.received = []

    def receive(self, packet, port):
        self.received.append((self.sim.now, packet))


def make_host(config=None):
    sim = Simulator()
    host = Host(sim, "H0", "10.1.0.1", config=config)
    sink = Sink(sim, "S", "10.0.0.1")
    connect(sim, host, sink)
    return sim, host, sink


def test_send_udp_builds_packet_and_transmits():
    sim, host, sink = make_host(HostConfig(stack_delay=0.0, nic_pps=None))
    host.send_udp(sink.ip, 8123, payload="hello", payload_bytes=10)
    sim.run()
    assert len(sink.received) == 1
    packet = sink.received[0][1]
    assert packet.udp.dst_port == 8123
    assert packet.ip.src_ip == host.ip


def test_stack_delay_applied_on_send():
    sim, host, sink = make_host(HostConfig(stack_delay=10e-6, nic_pps=None))
    host.send_udp(sink.ip, 1, None, 0)
    sim.run()
    assert sink.received[0][0] >= 10e-6


def test_nic_pacing_limits_send_rate():
    sim, host, sink = make_host(HostConfig(stack_delay=0.0, nic_pps=1000.0))
    for _ in range(2000):
        host.send_udp(sink.ip, 1, None, 0)
    sim.run(until=1.0)
    assert len(sink.received) <= 1100


def test_tx_queue_overflow_drops():
    sim, host, sink = make_host(HostConfig(stack_delay=0.0, nic_pps=10.0,
                                           tx_queue_packets=5))
    for _ in range(50):
        host.send_udp(sink.ip, 1, None, 0)
    sim.run(until=0.1)
    assert host.tx_dropped > 0


def test_bind_dispatches_by_udp_port():
    sim, host, sink = make_host(HostConfig(stack_delay=0.0, nic_pps=None))
    got = []
    host.bind(5000, got.append)
    packet = Packet(udp=UDPHeader(src_port=1, dst_port=5000))
    packet.ip.dst_ip = host.ip
    host.deliver(packet, list(host.ports.values())[0])
    sim.run()
    assert len(got) == 1


def test_unbound_port_uses_default_handler_or_drops():
    sim, host, sink = make_host(HostConfig(stack_delay=0.0, nic_pps=None))
    packet = Packet(udp=UDPHeader(dst_port=7777))
    host.deliver(packet, list(host.ports.values())[0])
    sim.run()
    assert host.packets_dropped == 1
    got = []
    host.default_handler = got.append
    host.deliver(Packet(udp=UDPHeader(dst_port=7777)), list(host.ports.values())[0])
    sim.run()
    assert len(got) == 1


def test_unbind_removes_handler():
    sim, host, sink = make_host(HostConfig(stack_delay=0.0, nic_pps=None))
    got = []
    host.bind(5000, got.append)
    host.unbind(5000)
    host.deliver(Packet(udp=UDPHeader(dst_port=5000)), list(host.ports.values())[0])
    sim.run()
    assert got == []


def test_failed_host_neither_sends_nor_receives():
    sim, host, sink = make_host(HostConfig(stack_delay=0.0, nic_pps=None))
    got = []
    host.bind(5000, got.append)
    host.fail()
    host.send_udp(sink.ip, 1, None, 0)
    host.deliver(Packet(udp=UDPHeader(dst_port=5000)), list(host.ports.values())[0])
    sim.run()
    assert sink.received == []
    assert got == []
    host.recover_device()
    host.send_udp(sink.ip, 1, None, 0)
    sim.run()
    assert len(sink.received) == 1


def test_dpdk_and_kernel_profiles_differ():
    dpdk = dpdk_host_config()
    kernel = kernel_host_config()
    assert dpdk.stack_delay < kernel.stack_delay
    assert dpdk.nic_pps == pytest.approx(20.5e6)


def test_host_without_uplink_drops_sends():
    sim = Simulator()
    host = Host(sim, "lonely", "10.1.0.9", config=HostConfig(stack_delay=0.0, nic_pps=None))
    host.send_udp("10.0.0.1", 1, None, 0)
    sim.run()
    assert host.packets_dropped == 1
