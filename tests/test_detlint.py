"""Tests for the detlint static-analysis pass (src/repro/analysis/).

Three layers:

* the fixture corpus under ``tests/fixtures/detlint/corpus/`` exercises every
  rule in both directions (bad file -> findings, good file -> silence) plus
  pragma handling and path scoping;
* the engine pieces (fingerprints, baseline, report, CLI) are tested on
  synthetic trees;
* a self-check asserts the repository itself is clean against the committed
  baseline, and regression tests pin the determinism fixes the pass found.
"""

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.analysis.baseline import BASELINE_SCHEMA, Baseline
from repro.analysis.cli import main
from repro.analysis.engine import check_paths
from repro.analysis.report import REPORT_SCHEMA, build_report, dump_report
from repro.analysis.rules import RULES, rule_ids
from repro.core.history import History, RecordingClient
from repro.netsim.engine import Simulator
from repro.netsim.host import Host
from repro.netsim.node import stable_name_seed
from repro.netsim.switch import Switch

REPO_ROOT = Path(__file__).resolve().parents[1]
CORPUS = REPO_ROOT / "tests" / "fixtures" / "detlint" / "corpus"


def _counts(path: Path):
    result = check_paths([str(path)], root=REPO_ROOT, include_fixtures=True)
    table = {}
    for finding in result.findings:
        table[finding.rule] = table.get(finding.rule, 0) + 1
    return table, result


# --------------------------------------------------------------------------- #
# Fixture corpus: every rule, both directions.
# --------------------------------------------------------------------------- #

CORPUS_EXPECTATIONS = [
    ("repro/netsim/det001_bad.py", {"DET001": 5}),
    ("repro/netsim/det001_good.py", {}),
    ("repro/netsim/det002_bad.py", {"DET002": 6, "DET008": 1}),
    ("repro/netsim/det002_good.py", {}),
    ("repro/netsim/det003_bad.py", {"DET003": 7}),
    ("repro/netsim/det003_good.py", {}),
    ("repro/det004_bad.py", {"DET004": 2}),
    ("repro/det004_good.py", {}),
    ("repro/netsim/det005_bad.py", {"DET005": 4}),
    ("repro/netsim/det005_good.py", {}),
    ("repro/netsim/det006_bad.py", {"DET006": 3}),
    ("repro/netsim/det006_good.py", {}),
    ("repro/netsim/det007_bad.py", {"DET007": 2}),
    ("repro/netsim/det007_good.py", {}),
    ("repro/det008_bad.py", {"DET008": 2}),
    ("repro/det008_good.py", {}),
    ("tools/out_of_scope.py", {}),
]


@pytest.mark.parametrize("relpath,expected", CORPUS_EXPECTATIONS)
def test_corpus_fixture(relpath, expected):
    table, _ = _counts(CORPUS / relpath)
    assert table == expected


def test_every_rule_covered_both_ways():
    """Each non-meta rule has at least one firing and one silent fixture."""
    firing = set()
    for _relpath, expected in CORPUS_EXPECTATIONS:
        firing |= set(expected)
    assert firing >= set(rule_ids()) - {"DET000"}
    for rule_id in sorted(set(rule_ids()) - {"DET000"}):
        stem = rule_id.lower()
        assert (CORPUS / "repro" / "netsim" / f"{stem}_good.py").exists() or (
            CORPUS / "repro" / f"{stem}_good.py"
        ).exists()


def test_fixtures_excluded_from_normal_scans():
    result = check_paths([str(CORPUS)], root=REPO_ROOT)
    assert result.files_scanned == 0
    included = check_paths([str(CORPUS)], root=REPO_ROOT, include_fixtures=True)
    assert included.files_scanned >= len(CORPUS_EXPECTATIONS)


# --------------------------------------------------------------------------- #
# Pragmas.
# --------------------------------------------------------------------------- #


def test_pragma_fixture_behaviour():
    table, result = _counts(CORPUS / "repro" / "pragmas.py")
    assert table == {"DET000": 3, "DET004": 1}
    assert len(result.suppressed) == 2
    justifications = sorted(s.justification for s in result.suppressed)
    assert justifications == [
        "exercised by the next line",
        "key order is the payload under test",
    ]
    messages = sorted(f.message for f in result.findings if f.rule == "DET000")
    assert any("without justification" in m for m in messages)
    assert any("unused suppression" in m.lower() for m in messages)
    assert any("malformed" in m for m in messages)


def test_pragma_in_string_literal_is_ignored(tmp_path):
    target = tmp_path / "repro" / "doc.py"
    target.parent.mkdir(parents=True)
    target.write_text(
        'TEXT = "# detlint: disable=DET004"\n'
        "DOC = '''\n# detlint: disable-file=DET003\n'''\n",
        encoding="utf-8",
    )
    result = check_paths([str(target)], root=tmp_path, include_fixtures=True)
    assert result.findings == []
    assert result.suppressed == []


# --------------------------------------------------------------------------- #
# Fingerprints.
# --------------------------------------------------------------------------- #

_WRITER = "import json\n\n\ndef save(path, payload):\n    path.write_text(json.dumps(payload))\n"


def test_fingerprint_survives_line_drift(tmp_path):
    first = tmp_path / "repro" / "writer.py"
    first.parent.mkdir(parents=True)
    first.write_text(_WRITER, encoding="utf-8")
    drifted = "# a comment\n# another\n\n" + _WRITER
    before = check_paths([str(first)], root=tmp_path).findings
    first.write_text(drifted, encoding="utf-8")
    after = check_paths([str(first)], root=tmp_path).findings
    assert [f.rule for f in before] == [f.rule for f in after] == ["DET004"]
    assert before[0].line != after[0].line
    assert before[0].fingerprint == after[0].fingerprint


def test_identical_lines_get_distinct_fingerprints(tmp_path):
    target = tmp_path / "repro" / "writer.py"
    target.parent.mkdir(parents=True)
    body = "    path.write_text(json.dumps(payload))\n"
    target.write_text("import json\n\n\ndef save(path, payload):\n" + body + body, encoding="utf-8")
    findings = check_paths([str(target)], root=tmp_path).findings
    assert len(findings) == 2
    assert findings[0].fingerprint != findings[1].fingerprint


# --------------------------------------------------------------------------- #
# Baseline.
# --------------------------------------------------------------------------- #


def test_baseline_roundtrip_and_staleness(tmp_path):
    _, result = _counts(CORPUS / "repro" / "netsim" / "det002_bad.py")
    baseline = Baseline.from_findings(result.findings)
    new, baselined, stale = baseline.partition(result.findings)
    assert new == [] and len(baselined) == len(result.findings) and stale == []

    path = tmp_path / "baseline.json"
    baseline.dump(path)
    payload = json.loads(path.read_text(encoding="utf-8"))
    assert payload["schema"] == BASELINE_SCHEMA
    reloaded = Baseline.load(path)
    new, baselined, stale = reloaded.partition(result.findings)
    assert new == [] and stale == []

    # Dropping one entry turns that finding into a new one; a leftover entry
    # that matches nothing is reported stale.
    fingerprint = result.findings[0].fingerprint
    del reloaded.entries[fingerprint]
    reloaded.entries["deadbeefdeadbeef"] = {"fingerprint": "deadbeefdeadbeef"}
    new, baselined, stale = reloaded.partition(result.findings)
    assert [f.fingerprint for f in new] == [fingerprint]
    assert [entry["fingerprint"] for entry in stale] == ["deadbeefdeadbeef"]


def test_baseline_rejects_wrong_schema(tmp_path):
    path = tmp_path / "baseline.json"
    path.write_text(json.dumps({"schema": "bogus/v9", "entries": []}), encoding="utf-8")
    with pytest.raises(ValueError):
        Baseline.load(path)


# --------------------------------------------------------------------------- #
# Report.
# --------------------------------------------------------------------------- #


def test_report_schema_and_determinism():
    _, result = _counts(CORPUS / "repro" / "pragmas.py")
    new, baselined, stale = Baseline().partition(result.findings)
    report = build_report(result, new, baselined, stale, None)
    assert report["schema"] == REPORT_SCHEMA
    assert report["ok"] is False
    assert report["counts"]["DET004"] == 1
    assert {f["rule"] for f in report["findings"]} == {"DET000", "DET004"}
    assert all(s["justification"] for s in report["suppressed"])
    assert dump_report(report) == dump_report(build_report(result, new, baselined, stale, None))


# --------------------------------------------------------------------------- #
# CLI.
# --------------------------------------------------------------------------- #


def test_cli_check_fails_on_corpus_and_reports_json(capsys):
    code = main(
        [
            "check",
            str(CORPUS),
            "--root",
            str(REPO_ROOT),
            "--include-fixtures",
            "--no-baseline",
            "--format",
            "json",
        ]
    )
    assert code == 1
    report = json.loads(capsys.readouterr().out)
    assert report["schema"] == REPORT_SCHEMA
    assert report["ok"] is False
    assert report["counts"]["DET001"] == 5


def test_cli_check_passes_on_good_file(capsys):
    code = main(
        [
            "check",
            str(CORPUS / "repro" / "netsim" / "det001_good.py"),
            "--root",
            str(REPO_ROOT),
            "--include-fixtures",
            "--no-baseline",
        ]
    )
    assert code == 0
    assert "0 finding(s)" in capsys.readouterr().out


def test_cli_baseline_then_check_is_clean(tmp_path, capsys):
    baseline_path = tmp_path / "baseline.json"
    assert (
        main(
            [
                "baseline",
                str(CORPUS),
                "--root",
                str(REPO_ROOT),
                "--include-fixtures",
                "-o",
                str(baseline_path),
            ]
        )
        == 0
    )
    code = main(
        [
            "check",
            str(CORPUS),
            "--root",
            str(REPO_ROOT),
            "--include-fixtures",
            "--baseline",
            str(baseline_path),
        ]
    )
    capsys.readouterr()
    assert code == 0


def test_cli_explain(capsys):
    assert main(["explain", "DET003"]) == 0
    out = capsys.readouterr().out
    assert "DET003" in out and "sorted" in out
    assert main(["explain", "DET999"]) == 2


def test_cli_summary_markdown(capsys):
    code = main(
        [
            "check",
            str(CORPUS / "repro" / "pragmas.py"),
            "--root",
            str(REPO_ROOT),
            "--include-fixtures",
            "--no-baseline",
            "--summary",
        ]
    )
    assert code == 1
    out = capsys.readouterr().out
    assert out.startswith("## detlint")
    assert "| DET004 |" in out


# --------------------------------------------------------------------------- #
# Self-checks: the repository obeys its own rules.
# --------------------------------------------------------------------------- #


def test_repository_is_clean_against_committed_baseline():
    result = check_paths(["src", "benchmarks", "tests"], root=REPO_ROOT)
    baseline_path = REPO_ROOT / "analysis" / "baseline.json"
    baseline = Baseline.load(baseline_path) if baseline_path.exists() else Baseline()
    new, _, stale = baseline.partition(result.findings)
    assert new == [], "\n".join(f"{f.location()}: {f.rule}: {f.message}" for f in new)
    assert stale == [], "stale baseline entries; re-run 'python -m repro.analysis baseline'"


def test_analyzer_is_clean_on_itself():
    result = check_paths(["src/repro/analysis"], root=REPO_ROOT)
    assert result.findings == [] and result.suppressed == []
    assert result.files_scanned >= 6


def test_rule_metadata_complete():
    for rule in RULES:
        assert rule.id.startswith("DET") and len(rule.id) == 6
        assert rule.title and rule.summary and rule.rationale
        assert rule.scope_doc()


# --------------------------------------------------------------------------- #
# Regression tests for the determinism fixes detlint found.
# --------------------------------------------------------------------------- #


def test_stable_name_seed_is_hashseed_independent():
    code = (
        "from repro.netsim.node import stable_name_seed\n"
        "print(stable_name_seed('spine-3'), stable_name_seed('client-7'))\n"
    )
    outputs = set()
    for hashseed in ("0", "1", "424242"):
        env = dict(os.environ, PYTHONHASHSEED=hashseed)
        env["PYTHONPATH"] = str(REPO_ROOT / "src")
        proc = subprocess.run(
            [sys.executable, "-c", code],
            capture_output=True,
            text=True,
            env=env,
            cwd=str(REPO_ROOT),
            check=True,
        )
        outputs.add(proc.stdout)
    assert len(outputs) == 1


def test_default_device_rngs_replay_per_name():
    streams = []
    for _ in range(2):
        sim = Simulator()
        host = Host(sim, "host-1", "10.0.0.1")
        switch = Switch(sim, "tor-1", "10.1.0.1")
        streams.append(
            [host.rng.random() for _ in range(3)] + [switch.rng.random() for _ in range(3)]
        )
    assert streams[0] == streams[1]
    assert Host(Simulator(), "host-2", "10.0.0.2").rng.random() != streams[0][0]


class _StubSim:
    now = 0.0


class _StubClient:
    def __init__(self):
        self.sim = _StubSim()
        self.backend = "stub"


def test_recording_client_anonymous_names_are_deterministic():
    history = History(_StubSim())
    first = RecordingClient(_StubClient(), history)
    second = RecordingClient(_StubClient(), history)
    named = RecordingClient(_StubClient(), history, name="loader-0")
    assert first.name == "client-0001"
    assert second.name == "client-0002"
    assert named.name == "loader-0"
    other = History(_StubSim())
    assert RecordingClient(_StubClient(), other).name == "client-0001"
