"""Unit tests for consistent hashing with virtual nodes (Section 4.1)."""

from __future__ import annotations

import pytest

from repro.core.ring import ConsistentHashRing


SWITCHES = ["S0", "S1", "S2", "S3"]


def test_requires_enough_switches():
    with pytest.raises(ValueError):
        ConsistentHashRing(["S0", "S1"], replication=3)
    with pytest.raises(ValueError):
        ConsistentHashRing(SWITCHES, replication=0)


def test_virtual_node_count():
    ring = ConsistentHashRing(SWITCHES, vnodes_per_switch=25)
    assert len(ring.vnodes) == 100
    distribution = ring.load_distribution()
    assert all(count == 25 for count in distribution.values())


def test_chain_has_f_plus_one_distinct_switches():
    ring = ConsistentHashRing(SWITCHES, vnodes_per_switch=10, replication=3)
    for i in range(200):
        chain = ring.chain_for_key(f"key{i}")
        assert len(chain) == 3
        assert len(set(chain)) == 3
        assert all(switch in SWITCHES for switch in chain)


def test_chain_lookup_is_deterministic():
    ring_a = ConsistentHashRing(SWITCHES, vnodes_per_switch=10, seed=1)
    ring_b = ConsistentHashRing(SWITCHES, vnodes_per_switch=10, seed=99)
    for i in range(50):
        key = f"key{i}"
        assert ring_a.chain_for_key(key) == ring_b.chain_for_key(key)


def test_vgroup_matches_primary_vnode():
    ring = ConsistentHashRing(SWITCHES, vnodes_per_switch=10)
    for i in range(50):
        key = f"key{i}"
        vgroup = ring.vgroup_for_key(key)
        assert ring.primary_vnode_for_key(key).vnode_id == vgroup
        # The chain of the key equals the chain of its virtual group.
        assert ring.chain_for_key(key) == ring.chain_for_vgroup(vgroup)


def test_keys_spread_over_switches():
    ring = ConsistentHashRing(SWITCHES, vnodes_per_switch=25)
    heads = {ring.chain_for_key(f"key{i}")[0] for i in range(500)}
    assert heads == set(SWITCHES)


def test_vgroups_involving_counts():
    ring = ConsistentHashRing(SWITCHES, vnodes_per_switch=10, replication=3)
    groups = ring.vgroups_involving("S1")
    # Every group's chain has 3 of the 4 switches, so S1 appears in roughly
    # 3/4 of the 40 groups; it must appear in at least its own 10.
    assert len(groups) >= 10
    for vgroup in groups:
        assert "S1" in ring.chain_for_vgroup(vgroup)


def test_reassign_vnode_changes_ownership():
    ring = ConsistentHashRing(SWITCHES, vnodes_per_switch=5)
    target = ring.virtual_nodes_of("S1")[0]
    ring.reassign_vnode(target.vnode_id, "S3")
    assert ring.vnodes[target.vnode_id].switch == "S3"
    assert target.vnode_id not in [v.vnode_id for v in ring.virtual_nodes_of("S1")]


def test_reassign_switch_spreads_over_live_switches():
    ring = ConsistentHashRing(SWITCHES, vnodes_per_switch=30, seed=5)
    mapping = ring.reassign_switch("S2")
    assert len(mapping) == 30
    assert all(target != "S2" for target in mapping.values())
    # Spread over more than one live switch (Section 5.2).
    assert len(set(mapping.values())) >= 2
    assert ring.virtual_nodes_of("S2") == []


def test_reassign_switch_requires_live_switches():
    ring = ConsistentHashRing(["A", "B", "C"], vnodes_per_switch=2, replication=3)
    with pytest.raises(ValueError):
        ring.reassign_switch("A", live_switches=[])


def test_replication_larger_than_switches_rejected_at_lookup():
    ring = ConsistentHashRing(SWITCHES, vnodes_per_switch=4, replication=3)
    with pytest.raises(ValueError):
        ring.chain_vnodes_for_key("k", replication=5)


def test_key_position_accepts_bytes_and_str():
    ring = ConsistentHashRing(SWITCHES)
    assert ring.key_position("abc") == ring.key_position(b"abc")


def test_duplicate_switch_names_rejected():
    with pytest.raises(ValueError):
        ConsistentHashRing(["S0", "S1", "S2", "S1"], replication=3)
    ring = ConsistentHashRing(SWITCHES, vnodes_per_switch=2)
    with pytest.raises(ValueError):
        ring.add_switch("S2")


def test_replication_equals_switch_count():
    """The tightest legal membership: every chain uses every switch."""
    ring = ConsistentHashRing(SWITCHES, vnodes_per_switch=5, replication=4)
    for i in range(100):
        chain = ring.chain_for_key(f"key{i}")
        assert sorted(chain) == sorted(SWITCHES)
    for vgroup in ring.vnodes:
        assert sorted(ring.chain_for_vgroup(vgroup)) == sorted(SWITCHES)
    # One switch fewer than replication is rejected outright.
    with pytest.raises(ValueError):
        ConsistentHashRing(SWITCHES[:3], replication=4)


def test_chain_for_vgroup_exclusion_skips_switches():
    ring = ConsistentHashRing(SWITCHES, vnodes_per_switch=5, replication=3)
    for vgroup in ring.vnodes:
        chain = ring.chain_for_vgroup(vgroup, exclude=["S1"])
        assert "S1" not in chain
        assert len(chain) == 3
        assert len(set(chain)) == 3
