"""Tests for the 2PL distributed-transaction application (Section 8.5)."""

from __future__ import annotations

from repro.apps.transactions import (
    NetChainTransactionClient,
    TransactionWorkloadConfig,
    ZooKeeperTransactionClient,
    total_committed,
    transactions_per_second,
)
from repro.baselines import ZooKeeperClient, ZooKeeperConfig, build_zookeeper_ensemble
from repro.netsim.host import HostConfig
from repro.netsim.routing import install_shortest_path_routes
from repro.netsim.topology import build_testbed
from tests.conftest import make_cluster


def test_workload_config_hot_set_size():
    assert TransactionWorkloadConfig(contention_index=0.001).num_hot_items() == 1000
    assert TransactionWorkloadConfig(contention_index=0.1).num_hot_items() == 10
    assert TransactionWorkloadConfig(contention_index=1.0).num_hot_items() == 1
    config = TransactionWorkloadConfig(contention_index=0.01, cold_items=50)
    assert len(config.hot_keys()) == 100
    assert len(config.cold_keys()) == 50


def test_lock_set_contains_one_hot_and_nine_cold():
    config = TransactionWorkloadConfig(contention_index=0.01, cold_items=100)
    cluster = make_cluster()
    client = NetChainTransactionClient(cluster.agent("H0"), config, client_id="c0")
    locks = client._pick_lock_set()
    assert len(locks) == config.locks_per_txn
    assert sum(1 for k in locks if k.startswith(config.hot_prefix)) == 1
    assert len(set(locks)) == len(locks)


def make_netchain_txn_setup(contention_index=0.5, cold_items=40, num_clients=4):
    config = TransactionWorkloadConfig(contention_index=contention_index,
                                       cold_items=cold_items, seed=1)
    cluster = make_cluster()
    cluster.controller.populate(config.hot_keys() + config.cold_keys())
    agents = cluster.agent_list()
    clients = [NetChainTransactionClient(agents[i % len(agents)], config,
                                         client_id=f"c{i}", seed=i)
               for i in range(num_clients)]
    return cluster, clients


def test_netchain_transactions_commit_and_release_locks():
    cluster, clients = make_netchain_txn_setup(num_clients=2)
    for client in clients:
        client.start()
    cluster.run(until=cluster.sim.now + 0.02)
    for client in clients:
        client.stop()
    cluster.run(until=cluster.sim.now + 0.01)
    committed = total_committed(clients, 0.0, cluster.sim.now)
    assert committed > 0
    assert transactions_per_second(clients, 0.0, cluster.sim.now) > 0
    # After the run every lock is released (no transaction in flight holds one).
    controller = cluster.controller
    held = 0
    for key in clients[0].config.hot_keys() + clients[0].config.cold_keys():
        info = controller.chain_for_key(key)
        item = controller.stores[info.switches[-1]].read(key)
        if item is not None and item.value not in (b"",):
            held += 1
    assert held == 0


def test_netchain_contention_increases_aborts():
    low_cluster, low_clients = make_netchain_txn_setup(contention_index=0.02,
                                                       num_clients=4)
    high_cluster, high_clients = make_netchain_txn_setup(contention_index=1.0,
                                                         num_clients=4)
    for cluster, clients in ((low_cluster, low_clients), (high_cluster, high_clients)):
        for client in clients:
            client.start()
        cluster.run(until=cluster.sim.now + 0.02)
        for client in clients:
            client.stop()
    low_aborts = sum(c.stats.aborts for c in low_clients)
    high_aborts = sum(c.stats.aborts for c in high_clients)
    assert high_aborts > low_aborts


def test_single_client_never_aborts():
    cluster, clients = make_netchain_txn_setup(contention_index=1.0, num_clients=1)
    clients[0].start()
    cluster.run(until=cluster.sim.now + 0.02)
    clients[0].stop()
    assert clients[0].stats.aborts == 0
    assert clients[0].stats.committed.total() > 0


def test_zookeeper_transaction_client_commits():
    topo = build_testbed(host_config=HostConfig(stack_delay=40e-6, nic_pps=None))
    install_shortest_path_routes(topo)
    hosts = [topo.hosts[f"H{i}"] for i in range(4)]
    ensemble = build_zookeeper_ensemble(hosts[:3],
                                        ZooKeeperConfig(server_msgs_per_sec=None))
    ensemble.preload({"/txnlocks": b""})
    config = TransactionWorkloadConfig(contention_index=0.5, cold_items=30, seed=2)
    client = ZooKeeperTransactionClient(ZooKeeperClient(hosts[3], ensemble), config,
                                        client_id="zk-txn-0")
    client.start()
    topo.run(until=topo.sim.now + 1.0)
    client.stop()
    # Let the in-flight transaction finish releasing its locks.
    topo.run(until=topo.sim.now + 1.0)
    assert client.stats.committed.total() > 0
    # Locks are ephemeral znodes under the lock root and are all released.
    leader_tree = ensemble.leader().tree
    assert leader_tree.get_children("/txnlocks") == []
