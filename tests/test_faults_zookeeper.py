"""Failure-scenario matrix for the ZooKeeper baseline.

The same fault vocabulary (seeded link faults, switch failures, partitions
with heal) runs against the ZAB ensemble, with clients connected to the
leader so reads are linearizable, and the same history recorder /
linearizability checker verifies the outcome.  Because ZooKeeper rides on
the reliable TCP transport, faults cost latency (RTO stalls, congestion
backoff) rather than lost operations -- which is exactly the contrast to
NetChain's UDP-and-retry story the paper draws in Figure 9(d).

The ensemble servers are placed on hosts behind *different* switches of
the ring (unlike the throughput experiments, which co-locate everything
behind S0), so that switch and link faults actually cut server-to-server
paths.
"""

from __future__ import annotations

import random

import pytest

from repro.baselines import (
    ZooKeeperClient,
    ZooKeeperConfig,
    ZooKeeperKVClient,
    build_zookeeper_ensemble,
)
from repro.core.history import History, check_linearizable
from repro.netsim.faults import FaultInjector, FaultSchedule
from repro.netsim.host import HostConfig
from repro.netsim.link import LinkConfig
from repro.netsim.routing import install_shortest_path_routes
from repro.netsim.topology import Topology
from repro.workloads import KeyValueWorkload, LoadClient, WorkloadConfig
from tests.conftest import fault_seeds

SEEDS = fault_seeds()

STORE_SIZE = 12


class ZkFaultHarness:
    """A ZooKeeper deployment spread over the ring, with recorded load."""

    def __init__(self, seed: int) -> None:
        topo = Topology(seed=seed)
        host_config = HostConfig(stack_delay=40e-6, nic_pps=None)
        switches = [topo.add_switch(f"S{i}") for i in range(4)]
        for a, b in [(0, 1), (1, 2), (2, 3), (3, 0)]:
            topo.add_link(switches[a], switches[b], config=LinkConfig())
        # One server host behind each of S0..S2; clients behind S0 with the
        # leader (server 0), so client <-> leader traffic never crosses the
        # faulted ring links.
        server_hosts = []
        for i in range(3):
            host = topo.add_host(f"Z{i}", config=host_config)
            topo.add_link(host, switches[i], config=LinkConfig())
        client_hosts = []
        for i in range(2):
            host = topo.add_host(f"C{i}", config=host_config)
            topo.add_link(host, switches[0], config=LinkConfig())
        install_shortest_path_routes(topo)
        self.topology = topo
        self.sim = topo.sim
        self.ensemble = build_zookeeper_ensemble(
            [topo.hosts[f"Z{i}"] for i in range(3)],
            ZooKeeperConfig(server_msgs_per_sec=None))
        self.keys = [f"k{i:08d}" for i in range(STORE_SIZE)]
        self.ensemble.preload({f"/kv/{key}": b"" for key in self.keys})
        self.injector = FaultInjector(topo, seed=seed,
                                      reroute_on_switch_fault=True)
        self.history = History(self.sim)
        self.clients = []
        for index in range(2):
            session = ZooKeeperClient(topo.hosts[f"C{index}"], self.ensemble,
                                      server_id=0)  # the leader
            workload = KeyValueWorkload(
                WorkloadConfig(store_size=STORE_SIZE, value_size=8,
                               write_ratio=0.4, unique_values=True),
                rng=random.Random((seed << 8) + index + 1), tag=f"z{index}")
            self.clients.append(LoadClient(ZooKeeperKVClient(session), workload,
                                           concurrency=2, history=self.history,
                                           think_time=4e-3, name=f"z{index}"))

    def schedule(self) -> FaultSchedule:
        return FaultSchedule(self.injector)

    def run(self, duration: float, drain: float = 2.5) -> None:
        for client in self.clients:
            client.start()
        self.sim.run(until=duration)
        for client in self.clients:
            client.stop()
        self.sim.run(until=duration + drain)

    def check(self):
        initial = {key.encode(): b"" for key in self.keys}
        return check_linearizable(self.history, initial=initial)

    def history_fingerprint(self):
        return [(op.client, op.op, op.key, op.value, op.invoked_at,
                 op.returned_at, op.ok) for op in self.history.ops]


def assert_zk_consistent(harness) -> None:
    report = harness.check()
    assert not report.exhausted_keys()
    assert report.ok, report.summary()
    assert not harness.history.version_violations()
    assert len(harness.history.completed_ops()) > 50


@pytest.mark.parametrize("seed", SEEDS)
def test_follower_switch_failure_and_repair(seed):
    harness = ZkFaultHarness(seed)
    # S2 going down isolates follower Z2; quorum (leader + Z1) continues.
    (harness.schedule()
     .at(0.6, "fail_switch", "S2")
     .at(2.0, "recover_switch", "S2")
     .arm())
    harness.run(duration=3.5)
    assert_zk_consistent(harness)
    trace = [(event.kind, event.target) for event in harness.injector.trace]
    assert ("switch_fail", "S2") in trace and ("switch_recover", "S2") in trace
    # The isolated follower caught up after the repair.
    leader_commits = harness.ensemble.servers[0].writes_committed
    follower_commits = harness.ensemble.servers[2].writes_committed
    assert leader_commits > 0
    assert follower_commits == leader_commits


@pytest.mark.parametrize("seed", SEEDS)
def test_lossy_leader_follower_link(seed):
    harness = ZkFaultHarness(seed)
    (harness.schedule()
     .at(0.3, "set_link_faults", "S0", "S1", loss_rate=0.1,
         corrupt_rate=0.02, reorder_jitter=100e-6)
     .arm())
    harness.run(duration=3.0)
    assert_zk_consistent(harness)
    drops = harness.injector.drop_report()["S0-S1"]
    assert drops["dropped_loss"] > 0
    # TCP absorbed the loss: nothing was lost end to end, only delayed.
    assert harness.clients[0].failed_queries == 0


@pytest.mark.parametrize("seed", SEEDS)
def test_acceptance_scenario_partition_heal_replays(seed):
    """Flagship ZK schedule: lossy link + follower switch failure +
    partition heal, consistent and replay-identical."""

    def build(harness):
        (harness.schedule()
         .at(0.3, "set_link_faults", "S0", "S1", loss_rate=0.05)
         .at(0.8, "fail_switch", "S2")
         .at(1.6, "recover_switch", "S2")
         .at(2.2, "partition", {"S1", "Z1"})
         .at(3.0, "heal_partition")
         .arm())
        harness.run(duration=4.0, drain=3.0)

    first = ZkFaultHarness(seed)
    build(first)
    assert_zk_consistent(first)
    assert first.injector.trace_signature()

    second = ZkFaultHarness(seed)
    build(second)
    assert first.injector.trace_signature() == second.injector.trace_signature()
    assert first.history_fingerprint() == second.history_fingerprint()
    assert first.injector.drop_report() == second.injector.drop_report()
