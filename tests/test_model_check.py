"""Randomized state-machine check mirroring the paper's TLA+ specification.

The appendix model-checks the NetChain request-handling process against two
safety properties while the environment may drop, duplicate and reorder
messages and may fail and recover switches:

* ``Consistency``      -- a client only observes non-decreasing versions;
* ``UpdatePropagation`` -- an upstream chain switch stores a version at
  least as new as any downstream switch.

This test performs the equivalent check by executing thousands of randomly
generated schedules against the real implementation (switch programs wired
through an abstract lossy channel), which explores a far larger state space
than any single integration test.  Hypothesis drives the schedule choice.
"""

from __future__ import annotations

import random

from hypothesis import given, settings, strategies as st

from repro.core.invariants import ClientObservationChecker, check_chain_invariant
from repro.core.kvstore import KVStoreConfig, SwitchKVStore
from repro.core.protocol import OpCode, QueryStatus, build_query_packet, make_read, make_write
from repro.core.switch_program import NetChainSwitchProgram, RedirectRule
from repro.netsim.engine import Simulator
from repro.netsim.switch import PipelineAction, Switch, SwitchConfig

CLIENT_IP = "10.1.0.1"
KEYS = ["alpha", "beta"]


class AbstractChain:
    """A chain of switch programs joined by an explicitly scheduled channel.

    The 'network' between hops is a message bag from which the schedule
    decides what to deliver next, whether to drop it, or whether to
    duplicate it -- the same adversary the TLA+ model gives the checker.
    """

    def __init__(self, length=3):
        self.switches = []
        self.programs = []
        for i in range(length):
            switch = Switch(Simulator(), f"S{i}", f"10.0.0.{i + 1}",
                            config=SwitchConfig(capacity_pps=None))
            program = NetChainSwitchProgram(
                switch, kvstore=SwitchKVStore(switch, config=KVStoreConfig(slots=16)))
            for key in KEYS:
                program.kvstore.insert_key(key)
            self.switches.append(switch)
            self.programs.append(program)
        self.ips = [s.ip for s in self.switches]
        self.in_flight = []   # packets between hops
        self.replies = []     # packets addressed back to the client
        self.failed = set()

    # -- schedule actions ------------------------------------------------ #

    def client_write(self, key, value):
        header = make_write(key, value, self.ips)
        packet = build_query_packet(CLIENT_IP, 9000, self.ips[0], header)
        self.in_flight.append(packet)

    def client_read(self, key):
        header = make_read(key, self.ips)
        packet = build_query_packet(CLIENT_IP, 9000, self.ips[-1], header)
        self.in_flight.append(packet)

    def deliver(self, index):
        """Deliver one in-flight packet to the switch it is addressed to."""
        if not self.in_flight:
            return
        packet = self.in_flight.pop(index % len(self.in_flight))
        target = None
        for switch, program in zip(self.switches, self.programs, strict=True):
            if switch.ip == packet.ip.dst_ip:
                target = (switch, program)
                break
        if target is None:
            # Addressed to the client (a reply) or to a failed/unknown hop.
            if packet.ip.dst_ip == CLIENT_IP:
                self.replies.append(packet)
            return
        switch, program = target
        if switch.name in self.failed:
            # Fail-stop: in the real network the packet would transit one of
            # the failed switch's neighbours, whose failover rule intercepts
            # it (Algorithm 2).  Model that by processing the packet at the
            # first live switch instead.
            live = [(s, p) for s, p in zip(self.switches, self.programs, strict=True)
                    if s.name not in self.failed]
            if not live:
                return
            switch, program = live[0]
        action = program.process(switch, packet, None)
        if action is PipelineAction.FORWARD:
            if packet.ip.dst_ip == CLIENT_IP:
                self.replies.append(packet)
            else:
                self.in_flight.append(packet)

    def duplicate(self, index):
        if not self.in_flight:
            return
        packet = self.in_flight[index % len(self.in_flight)]
        self.in_flight.append(packet.copy())

    def drop(self, index):
        if not self.in_flight:
            return
        self.in_flight.pop(index % len(self.in_flight))

    def fail_switch(self, index):
        """Fail a non-head switch and install the failover rules on the
        remaining switches (the controller's Algorithm 2, applied atomically
        as the model does)."""
        index = index % len(self.switches)
        name = self.switches[index].name
        if name in self.failed or len(self.failed) >= len(self.switches) - 1:
            return
        self.failed.add(name)
        failed_ip = self.switches[index].ip
        for switch, program in zip(self.switches, self.programs, strict=True):
            if switch.name in self.failed:
                continue
            program.add_rule(RedirectRule(match_dst_ip=failed_ip, kind="failover",
                                          priority=10))

    # -- invariants ------------------------------------------------------ #

    def live_stores_in_chain_order(self):
        return [program.kvstore for switch, program in zip(self.switches, self.programs, strict=True)
                if switch.name not in self.failed]


actions = st.lists(
    st.tuples(st.sampled_from(["write", "read", "deliver", "deliver", "deliver",
                               "duplicate", "drop", "fail"]),
              st.integers(0, 7)),
    min_size=10, max_size=80)


@given(schedule=actions, seed=st.integers(0, 2**16))
@settings(max_examples=120, deadline=None)
def test_random_schedules_preserve_safety_properties(schedule, seed):
    rng = random.Random(seed)
    chain = AbstractChain()
    checker = ClientObservationChecker()
    observed_replies = 0
    write_counter = 0
    for action, argument in schedule:
        if action == "write":
            key = KEYS[argument % len(KEYS)]
            chain.client_write(key, f"v{write_counter}")
            write_counter += 1
        elif action == "read":
            chain.client_read(KEYS[argument % len(KEYS)])
        elif action == "deliver":
            chain.deliver(argument)
        elif action == "duplicate":
            chain.duplicate(argument)
        elif action == "drop":
            chain.drop(argument)
        elif action == "fail":
            # Fail switches only occasionally so most schedules exercise the
            # ordering machinery rather than degenerate to a single node.
            if rng.random() < 0.3:
                chain.fail_switch(argument)
        # UpdatePropagation: checked after every step, over live switches.
        assert check_chain_invariant(chain.live_stores_in_chain_order(), KEYS,
                                     raise_on_violation=False) == []
        # Consistency: the versions exposed to client *read* queries are
        # monotonically increasing (Section 4.5).  Write acknowledgements are
        # deliberately excluded: during tail failover the neighbour replies
        # on behalf of the failed tail (Algorithm 2 line 6), so acks for two
        # distinct in-flight writes can legally arrive out of version order.
        for reply in chain.replies[observed_replies:]:
            header = reply.payload
            if header.status == QueryStatus.OK and header.op == OpCode.READ_REPLY:
                assert checker.observe(header.key, header.session, header.seq)
        observed_replies = len(chain.replies)
    # Drain: deliver everything still in flight and re-check.
    for _ in range(200):
        if not chain.in_flight:
            break
        chain.deliver(0)
    assert check_chain_invariant(chain.live_stores_in_chain_order(), KEYS,
                                 raise_on_violation=False) == []
