"""Tests for workload generators and load-driving clients."""

from __future__ import annotations

import pytest

from repro.workloads import (
    KeyValueWorkload,
    LoadClient,
    OpType,
    WorkloadConfig,
    measure_load,
    zipf_probabilities,
)
from tests.conftest import make_cluster


def test_workload_defaults_match_paper_section_8_1():
    config = WorkloadConfig()
    assert config.store_size == 20000
    assert config.value_size == 64
    assert config.write_ratio == pytest.approx(0.01)


def test_key_names_cover_store_size():
    config = WorkloadConfig(store_size=10)
    names = config.key_names()
    assert len(names) == 10
    assert len(set(names)) == 10


def test_write_ratio_respected_statistically():
    workload = KeyValueWorkload(WorkloadConfig(store_size=100, write_ratio=0.3, seed=1))
    fraction = workload.measured_write_fraction(5000)
    assert 0.25 < fraction < 0.35


def test_read_only_and_write_only_extremes():
    reads = KeyValueWorkload(WorkloadConfig(store_size=10, write_ratio=0.0))
    writes = KeyValueWorkload(WorkloadConfig(store_size=10, write_ratio=1.0))
    assert all(op.op is OpType.READ for op in reads.operations(200))
    assert all(op.op is OpType.WRITE for op in writes.operations(200))


def test_write_operations_carry_values_of_configured_size():
    workload = KeyValueWorkload(WorkloadConfig(store_size=10, write_ratio=1.0,
                                               value_size=48))
    operation = workload.next_operation()
    assert operation.value is not None
    assert len(operation.value) == 48


def test_keys_drawn_from_store():
    workload = KeyValueWorkload(WorkloadConfig(store_size=50, seed=3))
    keys = {workload.pick_key() for _ in range(500)}
    assert keys.issubset(set(workload.keys))
    assert len(keys) > 20


def test_zipf_probabilities_sum_to_one_and_skew():
    uniform = zipf_probabilities(100, 0.0)
    skewed = zipf_probabilities(100, 0.99)
    assert uniform.sum() == pytest.approx(1.0)
    assert skewed.sum() == pytest.approx(1.0)
    assert skewed[0] > uniform[0]
    with pytest.raises(ValueError):
        zipf_probabilities(0, 0.5)


def test_zipf_workload_prefers_popular_keys():
    workload = KeyValueWorkload(WorkloadConfig(store_size=100, zipf_theta=1.2, seed=2))
    counts = {}
    for _ in range(3000):
        key = workload.pick_key()
        counts[key] = counts.get(key, 0) + 1
    top = max(counts.values())
    assert top > 3000 / 100 * 5  # far above the uniform share


def test_zipf_empirical_frequency_matches_analytic_mass():
    # The skewed scenarios of the hot-key tier lean on this property: the
    # generator's realized key frequencies must track the analytic Zipf
    # distribution, seeded and deterministic.
    import random as random_module

    n, theta, draws = 50, 0.99, 20000
    workload = KeyValueWorkload(WorkloadConfig(store_size=n, zipf_theta=theta),
                                rng=random_module.Random(11))
    counts = {}
    for _ in range(draws):
        key = workload.pick_key()
        counts[key] = counts.get(key, 0) + 1
    probabilities = zipf_probabilities(n, theta)
    top_key = workload.keys[0]
    empirical = counts[top_key] / draws
    assert empirical == pytest.approx(probabilities[0], rel=0.1)
    # Aggregate mass of the five hottest keys tracks the analytic mass too.
    top5 = sum(counts.get(key, 0) for key in workload.keys[:5]) / draws
    assert top5 == pytest.approx(float(probabilities[:5].sum()), rel=0.1)


def test_skewed_stream_is_deterministic_per_seed():
    config = WorkloadConfig(store_size=40, zipf_theta=1.2, write_ratio=0.2,
                            unique_values=True, seed=5)
    first = KeyValueWorkload(config, tag="c0").operations(400)
    second = KeyValueWorkload(config, tag="c0").operations(400)
    assert [(op.op, op.key, op.value) for op in first] \
        == [(op.op, op.key, op.value) for op in second]
    other = KeyValueWorkload(WorkloadConfig(store_size=40, zipf_theta=1.2,
                                            write_ratio=0.2,
                                            unique_values=True, seed=6),
                             tag="c0").operations(400)
    assert [op.key for op in first] != [op.key for op in other]


def test_skewed_load_client_replays_identically():
    def run_once():
        cluster = make_cluster()
        cluster.populate(20)
        workload = KeyValueWorkload(WorkloadConfig(store_size=20,
                                                   zipf_theta=0.99,
                                                   write_ratio=0.1, seed=9))
        client = LoadClient(cluster.agent("H0"), workload, concurrency=4)
        measurement = measure_load([client], warmup=0.0, duration=0.05)
        return (client.completions.total(), client.successes.total(),
                measurement.success_qps)

    assert run_once() == run_once()


def test_closed_loop_client_measures_throughput_and_latency():
    cluster = make_cluster()
    cluster.controller.populate([f"k{i:08d}" for i in range(20)])
    workload = KeyValueWorkload(WorkloadConfig(store_size=20, key_prefix="k",
                                               write_ratio=0.5, seed=0))
    client = LoadClient(cluster.agent("H0"), workload, concurrency=4)
    measurement = measure_load([client], warmup=0.01, duration=0.05)
    assert measurement.success_qps > 0
    assert measurement.mean_read_latency > 0
    assert measurement.mean_write_latency > 0
    assert measurement.scaled_qps(cluster.config.scale) > measurement.success_qps


def test_load_client_stop_halts_new_queries():
    cluster = make_cluster()
    cluster.controller.populate([f"k{i:08d}" for i in range(5)])
    workload = KeyValueWorkload(WorkloadConfig(store_size=5, key_prefix="k"))
    client = LoadClient(cluster.agent("H0"), workload, concurrency=2)
    client.start()
    cluster.run(until=cluster.sim.now + 0.02)
    client.stop()
    cluster.run(until=cluster.sim.now + 0.02)
    completed = client.completions.total()
    cluster.run(until=cluster.sim.now + 0.05)
    assert client.completions.total() == completed


def test_measure_requires_clients():
    with pytest.raises(ValueError):
        measure_load([], warmup=0.0, duration=0.1)
