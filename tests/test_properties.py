"""Property-based tests (hypothesis) for core data structures and invariants."""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.core.kvstore import KVStoreConfig, SwitchKVStore
from repro.core.protocol import NetChainHeader, OpCode, QueryStatus, normalize_key
from repro.core.ring import ConsistentHashRing
from repro.netsim.engine import Simulator
from repro.netsim.packet import int_to_ip, ip_to_int
from repro.netsim.stats import LatencyRecorder
from repro.netsim.switch import Switch, SwitchConfig


# --------------------------------------------------------------------- #
# Strategies.
# --------------------------------------------------------------------- #

keys = st.binary(min_size=1, max_size=16)
values = st.binary(min_size=0, max_size=128)
ip_ints = st.integers(min_value=0, max_value=2**32 - 1)


# --------------------------------------------------------------------- #
# Packet / protocol encoding.
# --------------------------------------------------------------------- #

@given(ip_ints)
def test_ip_conversion_roundtrip(value):
    assert ip_to_int(int_to_ip(value)) == value


@given(key=keys, value=values, seq=st.integers(0, 2**32 - 1),
       session=st.integers(0, 2**16 - 1), vgroup=st.integers(0, 2**16 - 1),
       chain=st.lists(ip_ints, max_size=4),
       cas=st.one_of(st.none(), st.binary(max_size=32)),
       op=st.sampled_from(list(OpCode)),
       status=st.sampled_from(list(QueryStatus)))
def test_header_wire_roundtrip_arbitrary_fields(key, value, seq, session, vgroup,
                                                chain, cas, op, status):
    header = NetChainHeader(op=op, key=normalize_key(key), value=value, seq=seq,
                            session=session, chain=[int_to_ip(i) for i in chain],
                            vgroup=vgroup, status=status, cas_expected=cas)
    decoded = NetChainHeader.from_bytes(header.to_bytes())
    assert decoded.op == header.op
    assert decoded.key == header.key
    assert decoded.value == header.value
    assert (decoded.session, decoded.seq) == (session, seq)
    assert decoded.chain == header.chain
    assert decoded.vgroup == vgroup
    assert decoded.status == status
    assert decoded.cas_expected == cas
    assert header.wire_size() == len(header.to_bytes())


# --------------------------------------------------------------------- #
# Consistent hashing.
# --------------------------------------------------------------------- #

@given(key=keys, replication=st.integers(1, 4))
@settings(max_examples=50)
def test_ring_chains_are_distinct_and_deterministic(key, replication):
    ring = ConsistentHashRing(["S0", "S1", "S2", "S3", "S4"], vnodes_per_switch=8,
                              replication=replication)
    chain = ring.chain_for_key(key)
    assert len(chain) == replication
    assert len(set(chain)) == replication
    assert chain == ring.chain_for_key(key)
    assert chain == ring.chain_for_vgroup(ring.vgroup_for_key(key), replication)


# --------------------------------------------------------------------- #
# Key-value storage.
# --------------------------------------------------------------------- #

def fresh_store(slots=32):
    switch = Switch(Simulator(), "S", "10.0.0.1", config=SwitchConfig())
    return SwitchKVStore(switch, config=KVStoreConfig(slots=slots))


@given(key=keys, value=values, seq=st.integers(0, 2**31), session=st.integers(0, 2**15))
@settings(max_examples=100)
def test_kvstore_write_read_roundtrip(key, value, seq, session):
    store = fresh_store()
    loc = store.insert_key(key)
    store.write_loc(loc, value, seq=seq, session=session)
    item = store.read_loc(loc)
    assert item.value == value
    assert item.version() == (session, seq)


@given(st.lists(st.tuples(values, st.integers(1, 1000), st.integers(0, 3)),
                min_size=1, max_size=30))
@settings(max_examples=60)
def test_replica_version_filter_converges_to_max(writes):
    """Applying any interleaving of versioned writes with the replica rule
    (accept only newer versions) leaves the replica at the maximum version --
    the essence of the Section 4.3 ordering argument."""
    store = fresh_store()
    loc = store.insert_key("k")
    for value, seq, session in writes:
        stored = store.read_loc(loc)
        if (session, seq) > stored.version():
            store.write_loc(loc, value, seq=seq, session=session)
    final = store.read_loc(loc)
    max_version = max((session, seq) for _, seq, session in writes)
    assert final.version() == max_version
    # The stored value is the one carried by the first write (in arrival
    # order) that reached the maximal version; later equal-version writes
    # are not "newer" and are dropped.
    expected_value = next(value for value, seq, session in writes
                          if (session, seq) == max_version)
    assert final.value == expected_value


@given(st.lists(keys, min_size=1, max_size=32, unique=True))
@settings(max_examples=50)
def test_kvstore_slot_allocation_is_injective(key_list):
    store = fresh_store(slots=64)
    locations = [store.insert_key(key) for key in key_list]
    normalized = {normalize_key(key) for key in key_list}
    assert len(set(locations)) == len(normalized)


# --------------------------------------------------------------------- #
# Statistics helpers.
# --------------------------------------------------------------------- #

@given(st.lists(st.floats(min_value=0.0, max_value=1e3, allow_nan=False),
                min_size=1, max_size=200))
def test_percentiles_are_order_statistics(samples):
    recorder = LatencyRecorder()
    for sample in samples:
        recorder.record(sample)
    assert recorder.percentile(0) >= min(samples) - 1e-9
    assert recorder.percentile(100) == max(samples)
    assert min(samples) <= recorder.median() <= max(samples)
    assert recorder.mean() <= max(samples) + 1e-9
