"""Unit tests for the NetChain packet format (Figure 2(b))."""

from __future__ import annotations

import pytest

from repro.core.protocol import (
    KEY_BYTES,
    NETCHAIN_UDP_PORT,
    REPLY_FOR,
    NetChainHeader,
    OpCode,
    QueryStatus,
    build_query_packet,
    make_cas,
    make_delete,
    make_read,
    make_write,
    normalize_key,
    normalize_value,
)


def test_normalize_key_pads_to_fixed_width():
    assert normalize_key("foo") == b"foo" + b"\x00" * (KEY_BYTES - 3)
    assert len(normalize_key(b"x" * 16)) == KEY_BYTES
    with pytest.raises(ValueError):
        normalize_key(b"x" * 17)


def test_normalize_value_accepts_common_types():
    assert normalize_value(None) == b""
    assert normalize_value(b"abc") == b"abc"
    assert normalize_value("abc") == b"abc"
    assert normalize_value(42) == b"42"


def test_header_wire_roundtrip():
    header = NetChainHeader(op=OpCode.WRITE, key=normalize_key("k1"), value=b"hello",
                            seq=7, session=2, chain=["10.0.0.2", "10.0.0.3"], vgroup=12,
                            status=QueryStatus.OK)
    decoded = NetChainHeader.from_bytes(header.to_bytes())
    assert decoded.op == OpCode.WRITE
    assert decoded.key == header.key
    assert decoded.value == b"hello"
    assert decoded.seq == 7
    assert decoded.session == 2
    assert decoded.chain == ["10.0.0.2", "10.0.0.3"]
    assert decoded.vgroup == 12
    assert decoded.query_id == header.query_id
    assert decoded.cas_expected is None


def test_header_roundtrip_with_cas_field():
    header = make_cas("lock", b"", b"owner-1", ["10.0.0.1", "10.0.0.2", "10.0.0.3"])
    decoded = NetChainHeader.from_bytes(header.to_bytes())
    assert decoded.op == OpCode.CAS
    assert decoded.cas_expected == b""
    assert decoded.value == b"owner-1"


def test_wire_size_matches_encoding_length():
    header = make_write("k", b"v" * 64, ["10.0.0.1", "10.0.0.2", "10.0.0.3"])
    assert header.wire_size() == len(header.to_bytes())


def test_header_copy_isolates_chain_list():
    header = make_write("k", b"v", ["10.0.0.1", "10.0.0.2", "10.0.0.3"])
    clone = header.copy()
    clone.chain.pop(0)
    assert len(header.chain) == 2
    assert len(clone.chain) == 1


def test_sc_field_counts_remaining_hops():
    header = make_write("k", b"v", ["10.0.0.1", "10.0.0.2", "10.0.0.3"])
    assert header.sc == 2
    header.chain.pop(0)
    assert header.sc == 1


def test_make_write_addresses_head_and_carries_rest():
    chain = ["10.0.0.1", "10.0.0.2", "10.0.0.3"]
    header = make_write("k", b"v", chain)
    # The caller sends to chain[0]; the header holds the rest in order.
    assert header.chain == ["10.0.0.2", "10.0.0.3"]
    assert header.op == OpCode.WRITE
    assert header.seq == 0 and header.session == 0


def test_make_read_addresses_tail_with_reverse_list():
    chain = ["10.0.0.1", "10.0.0.2", "10.0.0.3"]
    header = make_read("k", chain)
    # Read goes to the tail; the list holds the others in reverse order for
    # failure handling (Section 4.2).
    assert header.chain == ["10.0.0.2", "10.0.0.1"]
    assert header.op == OpCode.READ


def test_make_delete():
    header = make_delete("k", ["10.0.0.1", "10.0.0.2", "10.0.0.3"])
    assert header.op == OpCode.DELETE
    assert header.chain == ["10.0.0.2", "10.0.0.3"]


def test_reply_mapping_covers_all_requests():
    for op, reply in REPLY_FOR.items():
        assert NetChainHeader(op=op, key=normalize_key("k")).is_request()
        assert NetChainHeader(op=reply, key=normalize_key("k")).is_reply()


def test_query_ids_are_unique():
    ids = {make_read("k", ["10.0.0.1", "10.0.0.2", "10.0.0.3"]).query_id for _ in range(50)}
    assert len(ids) == 50


def test_build_query_packet_uses_reserved_port():
    header = make_read("k", ["10.0.0.1", "10.0.0.2", "10.0.0.3"])
    packet = build_query_packet("10.1.0.1", 9001, "10.0.0.3", header, created_at=1.5)
    assert packet.udp.dst_port == NETCHAIN_UDP_PORT
    assert packet.udp.src_port == 9001
    assert packet.ip.src_ip == "10.1.0.1"
    assert packet.ip.dst_ip == "10.0.0.3"
    assert packet.payload is header
    assert packet.payload_bytes == header.wire_size()
    assert packet.created_at == 1.5


def test_query_packet_fits_in_jumbo_frame_even_at_max_value():
    header = make_write("k", bytes(128), ["10.0.0.1", "10.0.0.2", "10.0.0.3"])
    packet = build_query_packet("10.1.0.1", 9001, "10.0.0.1", header)
    assert packet.fits_in_jumbo_frame()
