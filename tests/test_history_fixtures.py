"""Golden adversarial history corpus: both checkers vs recorded verdicts.

The fixtures under ``tests/fixtures/histories/`` are standalone
``history/v1`` NDJSON files with known linearizability verdicts (see
``generate.py`` there).  Every fixture is pushed through both checkers --
the in-memory :func:`repro.core.history.check_linearizable` and the
streaming :func:`repro.core.history_store.check_linearizable_streaming`
over a spilled run directory -- and both must agree with the manifest.
Any checker change that silently flips a verdict (echo semantics,
ambiguous-op latitude, CAS atomicity, version monotonicity) fails here.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.core.history import check_linearizable, version_violations_of
from repro.core.history_store import (
    HistoryStore,
    HistoryWriter,
    check_linearizable_streaming,
    decode_bytes,
    load_ndjson,
    read_ndjson_meta,
)

CORPUS = Path(__file__).parent / "fixtures" / "histories"
MANIFEST = json.loads((CORPUS / "manifest.json").read_text(encoding="utf-8"))
FIXTURES = MANIFEST["fixtures"]


def fixture_initial(entry):
    return {decode_bytes(name): decode_bytes(value)
            for name, value in entry["initial"].items()}


def spill(tmp_path, ops):
    """Round-trip ops through a spilled run directory."""
    run_dir = tmp_path / "run"
    with HistoryWriter(run_dir) as writer:
        for op in ops:
            writer.append(op)
    return HistoryStore(run_dir)


def test_corpus_covers_both_verdicts():
    verdicts = {entry["ok"] for entry in FIXTURES}
    assert verdicts == {True, False}
    assert len(FIXTURES) >= 12
    assert any(entry["version_violations"] for entry in FIXTURES)


@pytest.mark.parametrize("entry", FIXTURES,
                         ids=[entry["file"] for entry in FIXTURES])
def test_fixture_verdicts_agree(entry, tmp_path):
    ops = load_ndjson(CORPUS / entry["file"])
    initial = fixture_initial(entry)

    memory = check_linearizable(ops, initial=initial)
    assert not memory.exhausted_keys()
    assert memory.ok == entry["ok"], \
        f"in-memory checker disagrees with recorded verdict:\n{memory.summary()}"

    streaming = check_linearizable_streaming(
        spill(tmp_path, load_ndjson(CORPUS / entry["file"])), initial=initial)
    assert streaming.ok == entry["ok"], \
        f"streaming checker disagrees with recorded verdict:\n{streaming.summary()}"

    # Same verdict per key, not only in aggregate.
    assert {k: r.ok for k, r in memory.keys.items()} == \
        {k: r.ok for k, r in streaming.keys.items()}

    assert len(version_violations_of(ops)) == entry["version_violations"]


@pytest.mark.parametrize("entry", FIXTURES,
                         ids=[entry["file"] for entry in FIXTURES])
def test_fixture_headers_carry_meta(entry):
    meta = read_ndjson_meta(CORPUS / entry["file"])
    assert meta["initial"] == entry["initial"]
    assert meta["description"] == entry["description"]


def test_retry_echo_is_load_bearing():
    """The echo fixture is only linearizable *because* of the retries: the
    same history with ``retries=0`` must be rejected (it degenerates into
    the split-brain shape)."""
    ops = load_ndjson(CORPUS / "ok_retry_echo_oscillation.ndjson")
    entry = next(e for e in FIXTURES
                 if e["file"] == "ok_retry_echo_oscillation.ndjson")
    for op in ops:
        op.retries = 0
    assert not check_linearizable(ops, initial=fixture_initial(entry)).ok
