"""The backend registry and the Deployment/KVClient protocol conformance.

Every registered backend must build from the same declarative spec and
hand back clients speaking the unified KVClient protocol; these tests
pin that contract (plus the per-backend capability flags) so a new
backend can be validated by adding its name to the matrix.
"""

from __future__ import annotations

import pytest

from repro.core.client import KVFuture, KVResult
from repro.deploy import DeploymentSpec, available_backends, build_deployment, get_backend

ALL_BACKENDS = ["hybrid", "netchain", "primary-backup", "server-chain", "zookeeper"]


def small_spec(backend: str, **overrides) -> DeploymentSpec:
    defaults = dict(backend=backend, store_size=8, value_size=16, seed=2)
    defaults.update(overrides)
    return DeploymentSpec(**defaults)


def test_all_five_backends_are_registered():
    assert available_backends() == ALL_BACKENDS


def test_capability_matrix():
    assert get_backend("netchain").capabilities.supports_reconfig
    assert not get_backend("zookeeper").capabilities.supports_reconfig
    assert get_backend("zookeeper").capabilities.supports_watch
    assert not get_backend("netchain").capabilities.supports_watch
    for name in ("server-chain", "primary-backup"):
        caps = get_backend(name).capabilities
        assert not caps.scaled_throughput
        assert caps.supports_cas
    for name in ALL_BACKENDS:
        assert get_backend(name).capabilities.supports_fault_injection


@pytest.mark.parametrize("backend", ALL_BACKENDS)
def test_deployment_surface(backend):
    deployment = build_deployment(small_spec(backend))
    assert deployment.backend_name == backend
    assert deployment.spec is not None
    assert deployment.sim is not None
    assert deployment.topology is not None
    assert len(deployment.keys) == 8
    clients = deployment.clients(2)
    assert len(clients) == 2
    assert deployment.fault_injector is not None
    deployment.teardown()


@pytest.mark.parametrize("backend", ALL_BACKENDS)
def test_client_roundtrip_through_unified_protocol(backend):
    deployment = build_deployment(small_spec(backend))
    client = deployment.clients(1)[0]
    key = deployment.keys[0]

    future = client.read(key)
    assert isinstance(future, KVFuture)
    result = future.result()
    assert isinstance(result, KVResult)
    assert result.ok, result.error
    assert result.value == bytes(16)

    assert client.write(key, b"updated").result().ok
    assert client.read(key).result().value == b"updated"


@pytest.mark.parametrize("backend", ALL_BACKENDS)
def test_initial_values_match_preload(backend):
    deployment = build_deployment(small_spec(backend))
    initial = deployment.initial_values()
    assert len(initial) == 8
    assert all(value == bytes(16) for value in initial.values())


@pytest.mark.parametrize("backend", ["server-chain", "primary-backup"])
def test_server_baseline_cas_and_delete(backend):
    deployment = build_deployment(small_spec(backend))
    client = deployment.clients(1)[0]
    key = deployment.keys[0]

    lost = client.cas(key, b"wrong-expectation", b"stolen").result()
    assert not lost.ok and lost.cas_failed
    assert client.read(key).result().value == bytes(16)

    won = client.cas(key, bytes(16), b"swapped").result()
    assert won.ok, won.error
    assert client.read(key).result().value == b"swapped"

    deleted = client.delete(key).result()
    assert deleted.ok
    gone = client.read(key).result()
    assert not gone.ok and gone.not_found

    created = client.insert("fresh", b"value").result()
    assert created.ok
    assert client.read("fresh").result().value == b"value"


def test_server_chain_cas_applies_on_every_replica():
    deployment = build_deployment(small_spec("server-chain"))
    client = deployment.clients(1)[0]
    key = deployment.keys[0]
    assert client.cas(key, bytes(16), b"v2").result().ok
    for replica in deployment.cluster.replicas:
        assert replica.store[key][0] == b"v2"


def test_primary_backup_delete_reaches_backups():
    deployment = build_deployment(small_spec("primary-backup"))
    client = deployment.clients(1)[0]
    key = deployment.keys[0]
    assert client.delete(key).result().ok
    assert key not in deployment.cluster.primary.store
    for backup in deployment.cluster.backups:
        assert key not in backup.store


@pytest.mark.parametrize("backend", ["server-chain", "primary-backup"])
def test_multiple_clients_on_one_host_all_get_replies(backend):
    # The default spec has a single client host; two clients on it must
    # not collide on their reply endpoints (regression: host-derived
    # client names made the second registration shadow the first).
    deployment = build_deployment(small_spec(backend))
    first, second = deployment.clients(2)
    assert first.client.name != second.client.name
    futures = [first.write("a", b"1"), second.write("b", b"2")]
    assert all(future.result().ok for future in futures)
    assert first.read("b").result().value == b"2"
    assert second.read("a").result().value == b"1"


@pytest.mark.parametrize("backend", ["server-chain", "primary-backup", "zookeeper"])
def test_clients_are_cached_not_rebuilt(backend):
    deployment = build_deployment(small_spec(backend))
    first = deployment.clients(2)
    second = deployment.clients(2)
    assert first[0] is second[0] and first[1] is second[1]


def test_netchain_clients_are_the_host_agents():
    deployment = build_deployment(small_spec("netchain"))
    agents = deployment.cluster.agent_list()
    assert deployment.clients(2) == agents[:2]
    # More clients than hosts cycle over the agents.
    assert deployment.clients(6)[4] is agents[0]


def test_hybrid_split_places_keys_in_both_tiers():
    deployment = build_deployment(small_spec(
        "hybrid", options={"network_fraction": 0.5}))
    store = deployment.store
    in_network = [key for key in deployment.keys if store.in_network(key)]
    assert len(in_network) == 4
    assert deployment.cluster.controller.total_items() == 4
    # Server-tier keys are readable through the unified client.
    client = deployment.clients(1)[0]
    server_key = [k for k in deployment.keys if not store.in_network(k)][0]
    assert client.read(server_key).result().value == bytes(16)
    assert store.stats.server_reads == 1


def test_hybrid_honors_unlimited_capacity():
    deployment = build_deployment(DeploymentSpec(
        backend="hybrid", store_size=4, unlimited_capacity=True, seed=2))
    assert deployment.scale == 1.0
    switch = deployment.cluster.topology.switches["S0"]
    assert switch.config.capacity_pps is None
    host = deployment.cluster.topology.hosts["H0"]
    assert host.config.nic_pps is None


def test_hybrid_oversized_values_all_start_on_servers():
    deployment = build_deployment(DeploymentSpec(
        backend="hybrid", store_size=6, value_size=4096, seed=2))
    assert deployment.cluster.controller.total_items() == 0
    client = deployment.clients(1)[0]
    assert client.read(deployment.keys[0]).result().value == bytes(4096)
