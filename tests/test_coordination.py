"""Tests for the coordination primitives built on the NetChain KV API."""

from __future__ import annotations

import pytest

from repro.core.coordination import (
    Barrier,
    ConfigurationStore,
    CoordinationError,
    DistributedLock,
    GroupMembership,
    LockManager,
)
from tests.conftest import make_cluster


@pytest.fixture
def coord_cluster():
    cluster = make_cluster()
    cluster.controller.populate(["lock:a", "lock:b", "barrier:1", "cfg:mode", "cfg:limit",
                                 "group:shards"])
    return cluster


def test_lock_acquire_and_release(coord_cluster):
    agent = coord_cluster.agent("H0")
    lock = DistributedLock(agent, "lock:a", owner="client-1")
    assert lock.try_acquire()
    assert lock.held
    assert lock.holder() == b"client-1"
    assert lock.release()
    assert not lock.held
    assert lock.holder() == b""


def test_lock_mutual_exclusion(coord_cluster):
    lock1 = DistributedLock(coord_cluster.agent("H0"), "lock:a", owner="c1")
    lock2 = DistributedLock(coord_cluster.agent("H1"), "lock:a", owner="c2")
    assert lock1.try_acquire()
    assert not lock2.try_acquire()
    assert lock1.release()
    assert lock2.try_acquire()


def test_lock_release_requires_ownership(coord_cluster):
    lock1 = DistributedLock(coord_cluster.agent("H0"), "lock:a", owner="c1")
    lock2 = DistributedLock(coord_cluster.agent("H1"), "lock:a", owner="c2")
    assert lock1.try_acquire()
    assert not lock2.release()
    assert lock1.holder() == b"c1"


def test_lock_acquire_spins_until_available(coord_cluster):
    lock1 = DistributedLock(coord_cluster.agent("H0"), "lock:b", owner="c1")
    lock2 = DistributedLock(coord_cluster.agent("H1"), "lock:b", owner="c2")
    assert lock1.try_acquire()
    assert not lock2.acquire(max_attempts=3)
    lock1.release()
    assert lock2.acquire(max_attempts=3)


def test_async_lock_interface(coord_cluster):
    agent = coord_cluster.agent("H0")
    lock = DistributedLock(agent, "lock:a", owner="async-client")
    outcomes = []
    lock.try_acquire_async(outcomes.append)
    coord_cluster.run(until=coord_cluster.sim.now + 0.01)
    assert outcomes and outcomes[0].acquired
    lock.release_async(outcomes.append)
    coord_cluster.run(until=coord_cluster.sim.now + 0.01)
    assert len(outcomes) == 2
    assert not lock.held


def test_lock_manager_tracks_held_locks(coord_cluster):
    manager = LockManager(coord_cluster.agent("H0"), client_id="mgr-1")
    lock = manager.lock("lock:a")
    assert manager.lock("lock:a") is lock
    assert lock.try_acquire()
    assert manager.held_locks() == [lock]
    manager.release_all()
    assert manager.held_locks() == []


def test_barrier_requires_all_parties(coord_cluster):
    agents = [coord_cluster.agent(f"H{i}") for i in range(3)]
    barriers = [Barrier(agent, "barrier:1", parties=3) for agent in agents]
    assert barriers[0].arrive() == 1
    assert not barriers[0].is_complete()
    assert barriers[1].arrive() == 2
    assert barriers[2].arrive() == 3
    for barrier in barriers:
        assert barrier.is_complete()
    barriers[0].wait()  # returns immediately once complete


def test_barrier_rejects_zero_parties(coord_cluster):
    with pytest.raises(ValueError):
        Barrier(coord_cluster.agent("H0"), "barrier:1", parties=0)


# --------------------------------------------------------------------- #
# Error paths.
# --------------------------------------------------------------------- #

def test_lock_cas_conflict_retry_accounting(coord_cluster):
    """A contended lock records every CAS attempt that lost the race."""
    lock1 = DistributedLock(coord_cluster.agent("H0"), "lock:a", owner="c1")
    lock2 = DistributedLock(coord_cluster.agent("H1"), "lock:a", owner="c2")
    assert lock1.try_acquire()
    assert not lock2.acquire(max_attempts=4)
    assert lock2.attempts == 4
    assert lock2.cas_conflicts == 4
    assert lock1.cas_conflicts == 0
    lock1.release()
    assert lock2.acquire(max_attempts=2)
    assert lock2.cas_conflicts == 4  # the winning attempt adds no conflict


def test_barrier_cas_conflict_retries_arrival(coord_cluster):
    """An arrival that loses the increment race retries and still lands."""
    winner = Barrier(coord_cluster.agent("H0"), "barrier:1", parties=2)
    loser = Barrier(coord_cluster.agent("H1"), "barrier:1", parties=2)
    # Interleave deterministically: after the loser reads the count but
    # before its CAS, the winner arrives and bumps the value.
    real_count = loser._count
    sneaked = []

    def racing_count() -> int:
        value = real_count()
        if not sneaked:
            sneaked.append(True)
            winner.arrive()
        return value

    loser._count = racing_count
    assert loser.arrive() == 2
    assert loser.cas_conflicts == 1
    assert winner.cas_conflicts == 0
    assert loser.is_complete()


def test_barrier_with_missing_participant_times_out(coord_cluster):
    barrier = Barrier(coord_cluster.agent("H0"), "barrier:1", parties=3)
    assert barrier.arrive() == 1
    with pytest.raises(CoordinationError, match="did not complete"):
        barrier.wait(poll_interval=1e-3, max_polls=10)


def test_non_owner_release_is_rejected_async(coord_cluster):
    """The async interface also refuses a non-owner release."""
    owner = DistributedLock(coord_cluster.agent("H0"), "lock:b", owner="c1")
    thief = DistributedLock(coord_cluster.agent("H1"), "lock:b", owner="c2")
    assert owner.try_acquire()
    outcomes = []
    thief.release_async(outcomes.append)
    coord_cluster.run(until=coord_cluster.sim.now + 0.01)
    assert outcomes and outcomes[0].acquired  # release did not take effect
    assert owner.holder() == b"c1"


def test_configuration_store_set_get_cas(coord_cluster):
    config = ConfigurationStore(coord_cluster.agent("H0"))
    # A parameter that has never been set reports the caller's default.
    assert config.get("timeout", default=b"none") == b"none"
    # The first set of a brand-new parameter inserts it via the control plane.
    config.set("timeout", b"30")
    assert config.get("timeout") == b"30"
    config.set("mode", b"primary")
    assert config.get("mode") == b"primary"
    assert config.compare_and_set("mode", b"primary", b"backup")
    assert not config.compare_and_set("mode", b"primary", b"other")
    assert config.get("mode") == b"backup"
    # Another host observes the update.
    other = ConfigurationStore(coord_cluster.agent("H1"))
    assert other.get("mode") == b"backup"


def test_configuration_store_rejects_oversized_names(coord_cluster):
    config = ConfigurationStore(coord_cluster.agent("H0"))
    with pytest.raises(ValueError):
        config.set("a-very-long-configuration-name", b"x")


def test_group_membership_join_and_leave(coord_cluster):
    membership_a = GroupMembership(coord_cluster.agent("H0"), "group:shards")
    membership_b = GroupMembership(coord_cluster.agent("H1"), "group:shards")
    assert membership_a.members() == []
    assert membership_a.join("node-1")
    assert membership_b.join("node-2")
    assert membership_a.members() == [b"node-1", b"node-2"]
    assert membership_a.join("node-1")  # idempotent
    assert membership_b.leave("node-1")
    assert membership_b.members() == [b"node-2"]
    assert membership_b.leave("node-1")  # already gone
