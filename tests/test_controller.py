"""Unit/integration tests for the NetChain control plane (Section 5)."""

from __future__ import annotations

import pytest

from repro.core.controller import ControllerConfig, NetChainController
from repro.netsim.topology import build_testbed


def test_chain_assignment_uses_distinct_member_switches(cluster):
    controller = cluster.controller
    for i in range(50):
        info = controller.chain_for_key(f"key{i}")
        assert len(info.switches) == 3
        assert len(set(info.switches)) == 3
        ips, vgroup = controller.chain_ips_for_key(f"key{i}")
        assert len(ips) == 3
        assert vgroup == info.vgroup


def test_populate_installs_on_all_chain_switches(cluster):
    controller = cluster.controller
    controller.populate({"k1": b"v1"})
    info = controller.chain_for_key("k1")
    for name in info.switches:
        item = controller.stores[name].read("k1")
        assert item is not None
        assert item.value == b"v1"
    assert controller.total_items() == 1


def test_insert_key_takes_control_plane_latency(cluster):
    controller = cluster.controller
    done = []
    controller.insert_key("slow-key", on_done=lambda: done.append(cluster.sim.now))
    assert controller.chain_for_key("slow-key") is not None
    cluster.run(until=cluster.sim.now + 0.1)
    assert done and done[0] >= controller.config.insert_latency


def test_garbage_collect_removes_slots(cluster):
    controller = cluster.controller
    controller.populate(["gone"])
    controller.garbage_collect("gone")
    info = controller.chain_for_key("gone")
    for name in info.switches:
        assert controller.stores[name].read("gone") is None
    assert controller.total_items() == 0


def test_requires_enough_member_switches():
    topology = build_testbed()
    with pytest.raises(ValueError):
        NetChainController(topology, member_switches=["S0", "S1"],
                           config=ControllerConfig(replication=3, store_slots=64))


def test_fast_failover_installs_rules_on_neighbors_only(cluster):
    controller = cluster.controller
    cluster.topology.switches["S1"].fail()
    controller.fast_failover("S1")
    cluster.run(until=cluster.sim.now + 0.1)
    failed_ip = controller.switch_ip("S1")
    # Ring topology: S0 and S2 are S1's neighbours; S3 is not.
    for name, expect_rule in (("S0", True), ("S2", True), ("S3", False)):
        rules = [r for r in controller.programs[name].rules
                 if r.match_dst_ip == failed_ip and r.kind == "failover"]
        assert bool(rules) == expect_rule
    assert "S1" in controller.failed_switches
    # Failover is idempotent.
    controller.fast_failover("S1")
    cluster.run(until=cluster.sim.now + 0.1)
    s0_rules = [r for r in controller.programs["S0"].rules if r.kind == "failover"]
    assert len(s0_rules) == 1


def test_fast_failover_bumps_session_for_headed_groups(cluster):
    controller = cluster.controller
    headed = [vg for vg, info in controller.chain_table.items()
              if info.switches[0] == "S1"]
    assert headed, "expected S1 to head at least one virtual group"
    cluster.topology.switches["S1"].fail()
    controller.fast_failover("S1")
    cluster.run(until=cluster.sim.now + 0.1)
    for vgroup in headed:
        new_head = controller.chain_table[vgroup].switches[1]
        assert controller.sessions[vgroup] == 1
        assert controller.programs[new_head].head_sessions.get(vgroup) == 1


def test_affected_vgroups_lists_chains_containing_switch(cluster):
    controller = cluster.controller
    groups = controller.affected_vgroups("S2")
    assert groups
    for vgroup in groups:
        assert "S2" in controller.chain_table[vgroup].switches


def test_failure_recovery_replaces_switch_and_copies_state(cluster):
    controller = cluster.controller
    keys = [f"key{i}" for i in range(40)]
    controller.populate(keys)
    agent = cluster.agent("H0")
    for key in keys[:10]:
        agent.write_sync(key, b"before-failure")
    cluster.topology.switches["S1"].fail()
    controller.fast_failover("S1")
    report = controller.failure_recovery("S1", new_switch="S3")
    cluster.run(until=cluster.sim.now + 60.0)
    assert report.finished_at > 0
    assert report.groups_recovered == len(controller.affected_vgroups("S1")) or \
        report.groups_recovered > 0
    # S1 no longer appears in any chain.
    for info in controller.chain_table.values():
        assert "S1" not in info.switches
        assert len(set(info.switches)) == len(info.switches)
    # Data written before the failure is still readable.
    for key in keys[:10]:
        assert agent.read_sync(key).value == b"before-failure"


def test_recovery_report_counts_items(cluster):
    controller = cluster.controller
    controller.populate([f"key{i}" for i in range(30)])
    cluster.topology.switches["S2"].fail()
    controller.fast_failover("S2")
    report = controller.failure_recovery("S2", new_switch="S3")
    cluster.run(until=cluster.sim.now + 60.0)
    assert report.items_copied > 0
    assert report.replacements


def test_handle_switch_failure_runs_both_phases(cluster):
    controller = cluster.controller
    controller.populate([f"key{i}" for i in range(10)])
    cluster.topology.switches["S1"].fail()
    controller.handle_switch_failure("S1", new_switch="S3", recover=True,
                                     recovery_start_delay=0.5)
    cluster.run(until=cluster.sim.now + 60.0)
    assert controller.recovery_reports
    assert controller.recovery_reports[-1].finished_at > 0


def test_planned_removal_and_reintroduction(cluster):
    controller = cluster.controller
    controller.remove_switch("S3")
    assert "S3" in controller.failed_switches
    controller.reintroduce_switch("S3")
    assert "S3" not in controller.failed_switches
    assert controller.programs["S3"].active


def test_remove_switch_keeps_serving_through_failover(cluster):
    """Planned removal behaves exactly like a fast failover: the removed
    switch's chains keep answering with the remaining members."""
    controller = cluster.controller
    keys = [f"k{i}" for i in range(30)]
    controller.populate(keys)
    agent = cluster.agent("H0")
    for key in keys[:10]:
        assert agent.write_sync(key, b"pre").ok
    served_by_s1 = [key for key in keys
                    if "S1" in controller.chain_for_key(key).switches]
    assert served_by_s1, "expected S1 to serve some chains"
    controller.remove_switch("S1")
    cluster.run(until=cluster.sim.now + 0.1)
    # Failover rules landed on S1's physical neighbours only.
    s1_ip = controller.switch_ip("S1")
    for name in ("S0", "S2"):
        assert any(r.match_dst_ip == s1_ip and r.kind == "failover"
                   for r in controller.programs[name].rules)
    # Reads and writes still work, including on chains that contained S1.
    for key in keys[:10]:
        assert agent.read_sync(key).value == b"pre"
    for key in served_by_s1[:5]:
        assert agent.write_sync(key, b"post").ok
        assert agent.read_sync(key).value == b"post"


def test_remove_switch_is_idempotent(cluster):
    controller = cluster.controller
    controller.remove_switch("S3")
    controller.remove_switch("S3")
    cluster.run(until=cluster.sim.now + 0.1)
    assert "S3" in controller.failed_switches
    failover_rules = [r for program in controller.programs.values()
                      for r in program.rules if r.kind == "failover"]
    # One rule per neighbour (S2 and S0), not doubled by the second call.
    assert len(failover_rules) == 2


def test_reintroduced_switch_becomes_recovery_candidate(cluster):
    """After removal + reintroduction, the switch is empty but eligible:
    the next failure recovery may splice it back into chains."""
    controller = cluster.controller
    controller.populate([f"k{i}" for i in range(20)])
    controller.remove_switch("S3")
    controller.reintroduce_switch("S3")
    assert "S3" not in controller.failed_switches
    # Now S1 fails; S3 is the only disjoint replacement candidate.
    cluster.topology.switches["S1"].fail()
    controller.handle_switch_failure("S1", recover=True)
    cluster.run(until=cluster.sim.now + 60.0)
    report = controller.recovery_reports[-1]
    assert report.finished_at > 0
    assert report.groups_recovered > 0
    # Chains that did not already contain S3 spliced it in (chains that
    # did pick the other live switch, so several replacements can appear).
    assert "S3" in set(report.replacements.values())
    assert any("S3" in info.switches for info in controller.chain_table.values())


def test_reintroduce_clears_device_failure_and_reroutes(cluster):
    controller = cluster.controller
    cluster.topology.switches["S3"].fail()
    controller.fast_failover("S3")
    controller.reintroduce_switch("S3")
    assert not cluster.topology.switches["S3"].failed
    assert controller.programs["S3"].active
    # The underlay routes through S3 again (S0 -> S3 direct hop restored).
    from repro.netsim.routing import path_between
    assert path_between(cluster.topology, "S0", "S3") == ["S0", "S3"]


def test_events_log_records_reconfigurations(cluster):
    controller = cluster.controller
    cluster.topology.switches["S1"].fail()
    controller.fast_failover("S1")
    assert any("fast failover" in message for _, message in controller.events)


def test_recovery_of_head_bumps_session_again(cluster):
    controller = cluster.controller
    headed = [vg for vg, info in controller.chain_table.items()
              if info.switches[0] == "S1"]
    controller.populate([f"k{i}" for i in range(20)])
    cluster.topology.switches["S1"].fail()
    controller.fast_failover("S1")
    controller.failure_recovery("S1", new_switch="S3")
    cluster.run(until=cluster.sim.now + 60.0)
    for vgroup in headed:
        assert controller.sessions[vgroup] >= 2


# --------------------------------------------------------------------- #
# failure_recovery edge cases.
# --------------------------------------------------------------------- #

def make_minimal_cluster():
    """A cluster whose membership equals the replication factor: losing any
    switch leaves no disjoint replacement candidate."""
    from repro.core import ClusterConfig, NetChainCluster
    config = ClusterConfig(scale=1000.0, vnodes_per_switch=4, store_slots=2048)
    controller_config = ControllerConfig(vnodes_per_switch=4, store_slots=2048,
                                         sync_items_per_sec=2000.0)
    return NetChainCluster(config, member_switches=["S0", "S1", "S2"],
                           controller_config=controller_config)


def test_recovery_without_replacement_candidate_shrinks_chains():
    cluster = make_minimal_cluster()
    controller = cluster.controller
    keys = [f"k{i}" for i in range(20)]
    controller.populate(keys)
    agent = cluster.agent("H0")
    for key in keys[:5]:
        agent.write_sync(key, b"v")
    cluster.topology.switches["S1"].fail()
    controller.fast_failover("S1")
    affected = len(controller.affected_vgroups("S1"))
    report = controller.failure_recovery("S1")
    cluster.run(until=cluster.sim.now + 30.0)
    assert report.finished_at > 0
    assert report.groups_recovered == 0
    assert affected > 0 and report.groups_shrunk == affected
    # Chains shrank to the two live members: no duplicates, no S1.
    for info in controller.chain_table.values():
        assert "S1" not in info.switches
        assert len(info.switches) == len(set(info.switches)) == 2
    # The shrunk chains still serve reads and writes.
    for key in keys[:5]:
        assert agent.read_sync(key, deadline=5.0).value == b"v"
        assert agent.write_sync(key, b"after", deadline=5.0).ok


def test_recovery_with_no_live_switches_raises():
    cluster = make_minimal_cluster()
    controller = cluster.controller
    controller.populate(["k0"])
    for name in ("S0", "S1", "S2"):
        cluster.topology.switches[name].fail()
        controller.fast_failover(name)
    with pytest.raises(RuntimeError):
        controller.failure_recovery("S1")
    assert "S1" not in controller.recovering


def test_duplicate_recovery_request_is_a_noop(cluster):
    controller = cluster.controller
    controller.populate([f"k{i}" for i in range(30)])
    cluster.topology.switches["S1"].fail()
    controller.fast_failover("S1")
    first_report = controller.failure_recovery("S1", new_switch="S3")
    # A second request while the first is in flight must not restart it.
    second_report = controller.failure_recovery("S1", new_switch="S3")
    assert second_report is not first_report
    assert second_report.groups_recovered == 0
    assert len(controller.recovery_reports) == 1
    cluster.run(until=cluster.sim.now + 60.0)
    assert first_report.finished_at > 0


def test_second_failure_mid_recovery_completes_without_failed_chains(cluster):
    controller = cluster.controller
    keys = [f"k{i}" for i in range(40)]
    controller.populate(keys)
    cluster.topology.switches["S1"].fail()
    controller.fast_failover("S1")
    report = controller.failure_recovery("S1", new_switch="S3")

    # While S1's groups are being synchronized, S2 fails as well.
    def second_failure() -> None:
        cluster.topology.switches["S2"].fail()
        controller.handle_switch_failure("S2", recover=True)

    cluster.sim.schedule(0.2, second_failure)
    cluster.run(until=cluster.sim.now + 120.0)
    assert report.finished_at > 0
    assert "S1" not in controller.recovering
    assert "S2" not in controller.recovering
    assert controller.recovery_reports[-1].finished_at > 0
    # No chain routes through either failed switch, and none has duplicates.
    for info in controller.chain_table.values():
        assert "S1" not in info.switches
        assert "S2" not in info.switches
        assert len(set(info.switches)) == len(info.switches)
    # The survivors still serve.
    agent = cluster.agent("H0")
    for key in keys[:5]:
        assert agent.write_sync(key, b"post", deadline=10.0).ok


def test_replacement_failing_mid_recovery_is_rechosen(cluster):
    controller = cluster.controller
    keys = [f"k{i}" for i in range(40)]
    controller.populate(keys)
    cluster.topology.switches["S1"].fail()
    controller.fast_failover("S1")
    report = controller.failure_recovery("S1", new_switch="S3")

    # The preferred replacement dies while the copies are in flight.
    def kill_replacement() -> None:
        cluster.topology.switches["S3"].fail()
        controller.handle_switch_failure("S3", recover=True)

    cluster.sim.schedule(0.2, kill_replacement)
    cluster.run(until=cluster.sim.now + 120.0)
    assert report.finished_at > 0
    for info in controller.chain_table.values():
        assert "S1" not in info.switches
        assert "S3" not in info.switches
        assert len(set(info.switches)) == len(info.switches)
