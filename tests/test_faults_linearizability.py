"""Unit tests for the history recorder and per-key linearizability checker.

These drive the checker on hand-crafted histories with known verdicts --
both directions: known-good concurrent histories must be accepted, and
classic anomalies (stale reads, lost updates, impossible CAS outcomes)
must be rejected.
"""

from __future__ import annotations

from repro.core.client import KVResult
from repro.core.history import History, RecordingClient, check_linearizable
from tests.conftest import make_cluster


class Clock:
    """A manually advanced stand-in for the simulator in history tests."""

    def __init__(self) -> None:
        self.now = 0.0


def record(history, clock, client, op, key, t0, t1, value=None, expected=None,
           ok=True, output=None, not_found=False, cas_failed=False,
           timed_out=False, complete=True):
    clock.now = t0
    rec = history.invoke(client, op, key, value=value, expected=expected)
    if complete:
        clock.now = t1
        history.complete(rec, KVResult(ok=ok, op=op, key=rec.key,
                                       value=output if output is not None else b"",
                                       not_found=not_found, cas_failed=cas_failed,
                                       timed_out=timed_out))
    return rec


def test_sequential_history_is_linearizable():
    clock = Clock()
    h = History(clock)
    record(h, clock, "a", "write", "k", 0.0, 1.0, value=b"v1")
    record(h, clock, "a", "read", "k", 2.0, 3.0, output=b"v1")
    record(h, clock, "b", "write", "k", 4.0, 5.0, value=b"v2")
    record(h, clock, "b", "read", "k", 6.0, 7.0, output=b"v2")
    report = check_linearizable(h)
    assert report.ok
    assert report.keys[b"k"].ops == 4


def test_stale_read_is_rejected():
    clock = Clock()
    h = History(clock)
    record(h, clock, "a", "write", "k", 0.0, 1.0, value=b"v1")
    record(h, clock, "a", "write", "k", 2.0, 3.0, value=b"v2")
    # This read started after v2's write returned; v1 is stale.
    record(h, clock, "b", "read", "k", 4.0, 5.0, output=b"v1")
    report = check_linearizable(h)
    assert not report.ok
    assert b"k" in {r.key for r in report.violations()}
    assert "no valid linearization" in report.keys[b"k"].message


def test_concurrent_write_allows_either_read_order():
    clock = Clock()
    h = History(clock)
    # A long write concurrent with two reads: old-then-new is fine...
    record(h, clock, "w", "write", "k", 0.0, 10.0, value=b"new")
    record(h, clock, "r", "read", "k", 2.0, 3.0, ok=False, not_found=True)
    record(h, clock, "r", "read", "k", 4.0, 5.0, output=b"new")
    assert check_linearizable(h).ok


def test_value_going_backwards_within_write_window_is_rejected():
    clock = Clock()
    h = History(clock)
    # ...but new-then-old is not: a write cannot be unapplied.
    record(h, clock, "w", "write", "k", 0.0, 10.0, value=b"new")
    record(h, clock, "r", "read", "k", 2.0, 3.0, output=b"new")
    record(h, clock, "r", "read", "k", 4.0, 5.0, ok=False, not_found=True)
    assert not check_linearizable(h).ok


def test_initial_state_mapping_is_respected():
    clock = Clock()
    h = History(clock)
    record(h, clock, "r", "read", "k", 0.0, 1.0, output=b"seeded")
    assert check_linearizable(h, initial={b"k": b"seeded"}).ok
    assert not check_linearizable(h, initial={b"k": b"other"}).ok
    assert not check_linearizable(h).ok  # defaults to missing


def test_cas_success_requires_expected_value():
    clock = Clock()
    h = History(clock)
    record(h, clock, "a", "write", "k", 0.0, 1.0, value=b"a")
    record(h, clock, "b", "cas", "k", 2.0, 3.0, value=b"b", expected=b"a")
    record(h, clock, "c", "read", "k", 4.0, 5.0, output=b"b")
    assert check_linearizable(h).ok

    h2 = History(clock)
    record(h2, clock, "a", "write", "k", 0.0, 1.0, value=b"a")
    # CAS claims success although its expected value never existed.
    record(h2, clock, "b", "cas", "k", 2.0, 3.0, value=b"b", expected=b"x")
    assert not check_linearizable(h2).ok


def test_cas_failure_requires_mismatched_state():
    clock = Clock()
    h = History(clock)
    record(h, clock, "a", "write", "k", 0.0, 1.0, value=b"a")
    # A sequential CAS that reports failure even though the state matched.
    record(h, clock, "b", "cas", "k", 2.0, 3.0, value=b"b", expected=b"a",
           ok=False, cas_failed=True)
    assert not check_linearizable(h).ok
    # With a concurrent overwrite the failure is explainable.
    h2 = History(clock)
    record(h2, clock, "a", "write", "k", 0.0, 1.0, value=b"a")
    record(h2, clock, "c", "write", "k", 2.0, 2.6, value=b"c")
    record(h2, clock, "b", "cas", "k", 2.2, 3.0, value=b"b", expected=b"a",
           ok=False, cas_failed=True)
    assert check_linearizable(h2).ok


def test_delete_and_not_found_semantics():
    clock = Clock()
    h = History(clock)
    record(h, clock, "a", "write", "k", 0.0, 1.0, value=b"v")
    record(h, clock, "a", "delete", "k", 2.0, 3.0)
    record(h, clock, "b", "read", "k", 4.0, 5.0, ok=False, not_found=True)
    assert check_linearizable(h).ok


def test_timed_out_write_may_or_may_not_take_effect():
    clock = Clock()
    h = History(clock)
    record(h, clock, "a", "write", "k", 0.0, 1.0, value=b"v1")
    record(h, clock, "a", "write", "k", 2.0, 3.0, value=b"v2", ok=False,
           timed_out=True)
    # Observed: the lost write DID take effect.
    record(h, clock, "b", "read", "k", 4.0, 5.0, output=b"v2")
    assert check_linearizable(h).ok

    h2 = History(clock)
    record(h2, clock, "a", "write", "k", 0.0, 1.0, value=b"v1")
    record(h2, clock, "a", "write", "k", 2.0, 3.0, value=b"v2", ok=False,
           timed_out=True)
    # Observed: the lost write did NOT take effect.
    record(h2, clock, "b", "read", "k", 4.0, 5.0, output=b"v1")
    assert check_linearizable(h2).ok

    h3 = History(clock)
    record(h3, clock, "a", "write", "k", 0.0, 1.0, value=b"v1")
    record(h3, clock, "a", "write", "k", 2.0, 3.0, value=b"v2", ok=False,
           timed_out=True)
    # But it cannot take effect and then vanish again.
    record(h3, clock, "b", "read", "k", 4.0, 5.0, output=b"v2")
    record(h3, clock, "b", "read", "k", 6.0, 7.0, output=b"v1")
    assert not check_linearizable(h3).ok


def test_pending_operation_is_ambiguous():
    clock = Clock()
    h = History(clock)
    record(h, clock, "a", "write", "k", 0.0, 1.0, value=b"v1")
    record(h, clock, "a", "write", "k", 2.0, 0.0, value=b"v2", complete=False)
    record(h, clock, "b", "read", "k", 4.0, 5.0, output=b"v2")
    report = check_linearizable(h)
    assert report.ok
    assert report.keys[b"k"].ambiguous_ops >= 1


def test_keys_are_checked_independently():
    clock = Clock()
    h = History(clock)
    record(h, clock, "a", "write", "good", 0.0, 1.0, value=b"x")
    record(h, clock, "a", "read", "good", 2.0, 3.0, output=b"x")
    record(h, clock, "a", "write", "bad", 0.0, 1.0, value=b"x")
    record(h, clock, "a", "read", "bad", 2.0, 3.0, output=b"y")
    report = check_linearizable(h)
    assert not report.ok
    assert report.keys[b"good"].ok
    assert not report.keys[b"bad"].ok
    assert "NOT linearizable" in report.summary()


def test_version_monotonicity_helper():
    clock = Clock()
    h = History(clock)

    class Versioned:
        def __init__(self, session, seq):
            self.session, self.seq = session, seq

    rec1 = h.invoke("a", "read", "k")
    h.complete(rec1, KVResult(ok=True, op="read", raw=Versioned(1, 5)))
    rec2 = h.invoke("a", "read", "k")
    h.complete(rec2, KVResult(ok=True, op="read", raw=Versioned(1, 4)))
    violations = h.version_violations()
    assert len(violations) == 1 and "backwards" in violations[0]


def test_recording_client_wraps_any_backend():
    cluster = make_cluster()
    cluster.populate(4)
    history = History(cluster.sim)
    client = RecordingClient(cluster.agent("H0"), history, name="probe")
    assert client.write("k00000000", b"hello").result().ok
    read = client.read("k00000000").result()
    assert read.ok and read.value == b"hello"
    missing = client.read("nope").result()
    assert not missing.ok
    assert len(history) == 3
    assert all(op.completed for op in history.ops)
    assert history.ops[0].client == "probe"
    assert history.ops[1].output == b"hello"
    assert history.ops[2].not_found
    # NetChain results carry versions.
    assert history.ops[1].version is not None
    report = history.check(initial={b"k00000000": b"\x00" * 64})
    assert report.ok


def test_state_budget_marks_exhaustion():
    clock = Clock()
    h = History(clock)
    # Many fully concurrent certain writes + interleaved reads force real
    # search work; a tiny budget must be reported as exhaustion, not as a
    # verdict.
    for i in range(8):
        record(h, clock, f"c{i}", "write", "k", 0.0, 100.0, value=f"v{i}".encode())
    record(h, clock, "r", "read", "k", 1.0, 2.0, output=b"v7")
    report = check_linearizable(h, state_budget=3)
    assert report.keys[b"k"].exhausted
    assert report.exhausted_keys()
