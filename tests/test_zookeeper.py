"""Tests for the ZooKeeper baseline: data tree, ZAB ensemble, client, locks."""

from __future__ import annotations

import pytest

from repro.baselines import ZkLock, ZooKeeperClient, ZooKeeperConfig, build_zookeeper_ensemble
from repro.baselines.data_tree import DataTree, ZnodeError
from repro.netsim.host import HostConfig
from repro.netsim.routing import install_shortest_path_routes
from repro.netsim.topology import build_testbed


# --------------------------------------------------------------------- #
# Data tree.
# --------------------------------------------------------------------- #

def test_tree_create_get_set_delete():
    tree = DataTree()
    tree.create("/a", b"1")
    tree.create("/a/b", b"2")
    assert tree.get("/a/b").data == b"2"
    assert tree.get_children("/a") == ["b"]
    version = tree.set_data("/a/b", b"3")
    assert version == 1
    tree.delete("/a/b")
    assert not tree.exists("/a/b")
    assert tree.get_children("/a") == []


def test_tree_rejects_bad_paths_and_missing_parents():
    tree = DataTree()
    with pytest.raises(ZnodeError):
        tree.create("relative")
    with pytest.raises(ZnodeError):
        tree.create("/a/")
    with pytest.raises(ZnodeError):
        tree.create("/a//b")
    with pytest.raises(ZnodeError):
        tree.create("/missing/child")
    with pytest.raises(ZnodeError):
        tree.get("/nope")
    with pytest.raises(ZnodeError):
        tree.delete("/")


def test_tree_version_checks():
    tree = DataTree()
    tree.create("/v", b"0")
    tree.set_data("/v", b"1", expected_version=0)
    with pytest.raises(ZnodeError):
        tree.set_data("/v", b"2", expected_version=0)
    with pytest.raises(ZnodeError):
        tree.delete("/v", expected_version=5)


def test_tree_delete_requires_leaf():
    tree = DataTree()
    tree.create("/parent")
    tree.create("/parent/child")
    with pytest.raises(ZnodeError):
        tree.delete("/parent")


def test_tree_duplicate_create_rejected():
    tree = DataTree()
    tree.create("/x")
    with pytest.raises(ZnodeError):
        tree.create("/x")


def test_sequential_nodes_get_increasing_suffixes():
    tree = DataTree()
    tree.create("/locks")
    first = tree.create("/locks/lock-", sequential=True)
    second = tree.create("/locks/lock-", sequential=True)
    assert first == "/locks/lock-0000000000"
    assert second == "/locks/lock-0000000001"
    assert first < second


def test_ephemeral_nodes_removed_with_session():
    tree = DataTree()
    tree.create("/e1", ephemeral_owner=42)
    tree.create("/e2", ephemeral_owner=42)
    tree.create("/keep", ephemeral_owner=7)
    removed = tree.remove_session(42)
    assert sorted(removed) == ["/e1", "/e2"]
    assert tree.exists("/keep")


def test_ephemeral_nodes_cannot_have_children():
    tree = DataTree()
    tree.create("/e", ephemeral_owner=1)
    with pytest.raises(ZnodeError):
        tree.create("/e/child")


def test_watches_fire_once():
    tree = DataTree()
    tree.create("/w", b"0")
    events = []
    tree.add_data_watch("/w", lambda path, event: events.append((path, event)))
    tree.set_data("/w", b"1")
    tree.set_data("/w", b"2")
    assert events == [("/w", "changed")]
    child_events = []
    tree.add_child_watch("/w", lambda path, event: child_events.append(event))
    tree.create("/w/c")
    tree.create("/w/d")
    assert child_events == ["children"]


def test_snapshot_restore_roundtrip():
    tree = DataTree()
    tree.create("/a", b"1")
    tree.create("/a/b", b"2", ephemeral_owner=3)
    snapshot = tree.snapshot()
    other = DataTree()
    other.restore(snapshot)
    assert other.get("/a/b").data == b"2"
    assert other.get("/a/b").ephemeral_owner == 3
    assert other.node_count() == tree.node_count()


# --------------------------------------------------------------------- #
# Ensemble + client.
# --------------------------------------------------------------------- #

def make_deployment(num_servers=3, server_rate=None):
    topo = build_testbed(host_config=HostConfig(stack_delay=40e-6, nic_pps=None),
                         num_hosts=4)
    install_shortest_path_routes(topo)
    hosts = [topo.hosts[f"H{i}"] for i in range(4)]
    ensemble = build_zookeeper_ensemble(
        hosts[:num_servers], ZooKeeperConfig(server_msgs_per_sec=server_rate))
    return topo, ensemble, hosts[num_servers]


def test_ensemble_elects_first_server_as_leader():
    _, ensemble, _ = make_deployment()
    assert ensemble.leader().server_id == 0
    assert all(s.leader_id == 0 for s in ensemble.servers.values())


def test_create_get_set_delete_through_client():
    topo, ensemble, client_host = make_deployment()
    client = ZooKeeperClient(client_host, ensemble)
    assert client.create("/app", b"cfg").ok
    assert client.get("/app").data == b"cfg"
    result = client.set("/app", b"cfg2")
    assert result.ok and result.version == 1
    assert client.exists("/app").exists
    assert client.delete("/app").ok
    assert not client.exists("/app").exists


def test_writes_replicate_to_all_servers():
    topo, ensemble, client_host = make_deployment()
    client = ZooKeeperClient(client_host, ensemble)
    client.create("/replicated", b"x")
    topo.run(until=topo.sim.now + 0.1)
    for server in ensemble.servers.values():
        assert server.tree.exists("/replicated")


def test_reads_served_by_connected_follower():
    topo, ensemble, client_host = make_deployment()
    writer = ZooKeeperClient(client_host, ensemble, server_id=0)
    writer.create("/data", b"42")
    topo.run(until=topo.sim.now + 0.1)
    follower_client = ZooKeeperClient(client_host, ensemble, server_id=2)
    result = follower_client.get("/data")
    assert result.ok and result.data == b"42"
    assert ensemble.servers[2].reads_served >= 1


def test_write_latency_dominated_by_commit_path():
    """Section 8.2: reads ~170 us, writes ~2.35 ms."""
    topo, ensemble, client_host = make_deployment()
    client = ZooKeeperClient(client_host, ensemble, server_id=0)
    client.create("/lat", b"0")
    read = client.get("/lat")
    write = client.set("/lat", b"1")
    assert 100e-6 < read.latency < 400e-6
    assert 1.5e-3 < write.latency < 4e-3
    assert write.latency > 5 * read.latency


def test_errors_propagate_to_client():
    _, ensemble, client_host = make_deployment()
    client = ZooKeeperClient(client_host, ensemble)
    result = client.get("/does-not-exist")
    assert not result.ok
    assert result.error
    result = client.create("/a/b/c")  # parent missing
    assert not result.ok


def test_watch_event_delivered_to_client():
    topo, ensemble, client_host = make_deployment()
    watcher = ZooKeeperClient(client_host, ensemble, server_id=1)
    writer = ZooKeeperClient(client_host, ensemble, server_id=0)
    writer.create("/watched", b"0")
    topo.run(until=topo.sim.now + 0.1)
    watcher.get("/watched", watch=True)
    writer.set("/watched", b"1")
    topo.run(until=topo.sim.now + 0.1)
    assert watcher.watch_events
    assert watcher.watch_events[0]["path"] == "/watched"


def test_session_close_removes_ephemerals():
    topo, ensemble, client_host = make_deployment()
    client = ZooKeeperClient(client_host, ensemble)
    client.create("/session-node", ephemeral=True)
    topo.run(until=topo.sim.now + 0.1)
    client.close()
    topo.run(until=topo.sim.now + 0.5)
    for server in ensemble.servers.values():
        assert not server.tree.exists("/session-node")


def test_leader_failure_elects_new_leader_and_continues():
    topo, ensemble, client_host = make_deployment()
    client = ZooKeeperClient(client_host, ensemble, server_id=1)
    client.create("/before", b"1")
    ensemble.fail_server(0)
    assert ensemble.leader().server_id == 1
    result = client.create("/after", b"2")
    assert result.ok
    assert ensemble.servers[1].tree.exists("/after")
    # The follower applies the commit asynchronously after the client reply.
    topo.run(until=topo.sim.now + 0.1)
    assert ensemble.servers[2].tree.exists("/after")


def test_preload_bypasses_protocol():
    _, ensemble, _ = make_deployment()
    ensemble.preload({"/kv/a": b"1", "/kv/b": b"2"})
    for server in ensemble.servers.values():
        assert server.tree.get("/kv/a").data == b"1"
        assert server.tree.get("/kv/b").data == b"2"


def test_zk_lock_recipe_mutual_exclusion():
    topo, ensemble, client_host = make_deployment()
    client_a = ZooKeeperClient(client_host, ensemble, server_id=0)
    client_b = ZooKeeperClient(client_host, ensemble, server_id=1)
    lock_a = ZkLock(client_a, "/locks/resource")
    lock_b = ZkLock(client_b, "/locks/resource")
    assert lock_a.acquire()
    assert not lock_b.try_acquire()
    lock_a.release()
    assert lock_b.acquire()
    lock_b.release()


def test_ensure_path_creates_ancestors():
    _, ensemble, client_host = make_deployment()
    client = ZooKeeperClient(client_host, ensemble)
    client.ensure_path("/a/b/c")
    assert client.exists("/a").exists
    assert client.exists("/a/b").exists
    assert client.exists("/a/b/c").exists
