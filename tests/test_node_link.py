"""Unit tests for nodes, ports and links (delay, loss, reordering)."""

from __future__ import annotations

import random

import pytest

from repro.netsim.engine import Simulator
from repro.netsim.link import LinkConfig, connect
from repro.netsim.node import Node
from repro.netsim.packet import Packet


class RecordingNode(Node):
    """A node that records arrivals with timestamps."""

    def __init__(self, sim, name):
        super().__init__(sim, name)
        self.received = []

    def receive(self, packet, port):
        self.received.append((self.sim.now, packet))


def make_pair(config=None, seed=0):
    sim = Simulator()
    a = RecordingNode(sim, "a")
    b = RecordingNode(sim, "b")
    link = connect(sim, a, b, config=config, rng=random.Random(seed))
    return sim, a, b, link


def test_connect_creates_ports_and_peers():
    sim, a, b, link = make_pair()
    assert len(a.ports) == 1 and len(b.ports) == 1
    assert a.ports[0].peer() is b.ports[0]
    assert b.neighbors() == [a]
    assert a.port_to(b) is a.ports[0]
    assert link.connects(a, b) and link.connects(b, a)


def test_transmit_delivers_after_propagation_delay():
    sim, a, b, _ = make_pair(LinkConfig(delay=1e-6, bandwidth_bps=None))
    a.transmit(Packet(), a.ports[0])
    sim.run()
    assert len(b.received) == 1
    assert b.received[0][0] == pytest.approx(1e-6)


def test_serialization_delay_depends_on_size():
    config = LinkConfig(delay=0.0, bandwidth_bps=8e6)  # 1 byte per microsecond
    sim, a, b, _ = make_pair(config)
    packet = Packet(payload_bytes=66)  # 66 + 34 header bytes = 100 bytes
    a.transmit(packet, a.ports[0])
    sim.run()
    assert b.received[0][0] == pytest.approx(100e-6)


def test_loss_rate_drops_packets():
    config = LinkConfig(loss_rate=1.0)
    sim, a, b, link = make_pair(config)
    for _ in range(10):
        a.transmit(Packet(), a.ports[0])
    sim.run()
    assert b.received == []
    assert link.dropped == 10


def test_partial_loss_rate_is_statistical():
    config = LinkConfig(loss_rate=0.5)
    sim, a, b, link = make_pair(config, seed=7)
    for _ in range(500):
        a.transmit(Packet(), a.ports[0])
    sim.run()
    assert 150 < len(b.received) < 350
    assert link.dropped + len(b.received) == 500


def test_reorder_jitter_can_reorder_packets():
    config = LinkConfig(delay=1e-6, bandwidth_bps=None, reorder_jitter=50e-6)
    sim, a, b, _ = make_pair(config, seed=3)
    packets = [Packet() for _ in range(50)]
    for packet in packets:
        a.transmit(packet, a.ports[0])
    sim.run()
    received_ids = [p.packet_id for _, p in b.received]
    sent_ids = [p.packet_id for p in packets]
    assert sorted(received_ids) == sorted(sent_ids)
    assert received_ids != sent_ids  # at least one reordering happened


def test_counters_track_tx_rx():
    sim, a, b, link = make_pair()
    a.transmit(Packet(), a.ports[0])
    sim.run()
    assert a.packets_sent == 1
    assert b.packets_received == 1
    assert a.ports[0].tx_packets == 1
    assert b.ports[0].rx_packets == 1
    assert link.delivered == 1


def test_transmit_without_link_drops():
    sim = Simulator()
    node = RecordingNode(sim, "lonely")
    port = node.add_port()
    node.transmit(Packet(), port)
    sim.run()
    assert node.packets_dropped == 1


def test_duplicate_port_index_rejected():
    sim = Simulator()
    node = RecordingNode(sim, "n")
    node.add_port(0)
    with pytest.raises(ValueError):
        node.add_port(0)


def test_other_end_rejects_foreign_port():
    sim, a, b, link = make_pair()
    foreign = RecordingNode(sim, "c").add_port()
    with pytest.raises(ValueError):
        link.other_end(foreign)


def test_base_node_receive_is_abstract():
    sim = Simulator()
    node = Node(sim, "base")
    with pytest.raises(NotImplementedError):
        node.receive(Packet(), None)
