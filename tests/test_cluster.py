"""Tests for the NetChainCluster convenience wrapper."""

from __future__ import annotations

import pytest

from repro.core import ClusterConfig, NetChainCluster
from repro.core.controller import ControllerConfig
from tests.conftest import make_cluster


def test_default_cluster_builds_testbed():
    cluster = make_cluster()
    assert set(cluster.topology.switches) == {"S0", "S1", "S2", "S3"}
    assert len(cluster.agents) == 4
    assert cluster.agent("H0") is cluster.agents["H0"]
    assert len(cluster.agent_list()) == 4


def test_populate_installs_keys_with_values():
    cluster = make_cluster()
    keys = cluster.populate(25, value_size=32)
    assert len(keys) == 25
    result = cluster.agent("H0").read_sync(keys[0])
    assert result.ok
    assert len(result.value) == 32
    assert cluster.controller.total_items() == 25


def test_total_completed_aggregates_agents():
    cluster = make_cluster()
    cluster.populate(4)
    cluster.agent("H0").read_sync("k00000000")
    cluster.agent("H1").read_sync("k00000001")
    assert cluster.total_completed() == 2


def test_scale_applies_to_device_capacities():
    cluster = NetChainCluster(ClusterConfig(scale=2000.0, store_slots=256,
                                            vnodes_per_switch=2),
                              controller_config=ControllerConfig(store_slots=256,
                                                                 vnodes_per_switch=2))
    switch = cluster.topology.switches["S0"]
    host = cluster.topology.hosts["H0"]
    assert switch.config.capacity_pps == pytest.approx(4e9 / 2000.0)
    assert host.config.nic_pps == pytest.approx(20.5e6 / 2000.0)


def test_fail_switch_schedules_failure_and_recovery():
    cluster = make_cluster()
    cluster.populate(10)
    cluster.fail_switch("S1", at=0.01, new_switch="S3", detection_delay=0.01,
                        recovery_start_delay=0.05)
    cluster.run(until=20.0)
    assert cluster.topology.switches["S1"].failed
    assert "S1" in cluster.controller.failed_switches
    assert cluster.controller.recovery_reports
    assert cluster.controller.recovery_reports[-1].finished_at > 0


def test_custom_topology_can_be_injected():
    from repro.netsim.topology import build_testbed
    topology = build_testbed(num_hosts=2)
    cluster = NetChainCluster(ClusterConfig(store_slots=128, vnodes_per_switch=2),
                              topology=topology,
                              controller_config=ControllerConfig(store_slots=128,
                                                                 vnodes_per_switch=2))
    assert len(cluster.agents) == 2
    assert cluster.topology is topology
