"""Fast sanity checks for the experiment drivers (shapes, not exact numbers).

The full sweeps behind the paper's figures live in ``benchmarks/``; these
tests run miniature versions of each driver so regressions in the
experiment harness are caught by the unit-test suite.
"""

from __future__ import annotations

import pytest

from repro.deploy import DeploymentSpec, build_deployment
from repro.experiments import (
    build_netchain_deployment,
    build_zookeeper_deployment,
    failure_experiment,
    netchain_latency_curve,
    netchain_max_throughput_qps,
    netchain_throughput,
    netchain_transactions,
    scalability_experiment,
    table1,
    zookeeper_latency_curve,
    zookeeper_throughput,
    zookeeper_transactions,
)
from repro.experiments.throughput import adaptive_retry_timeout, netchain_server_sweep


SCALE = 100000.0  # tiny simulated rates keep these tests fast


def test_netchain_max_throughput_is_2_bqps():
    assert netchain_max_throughput_qps() == pytest.approx(2e9)


def test_adaptive_retry_timeout_scales_with_concurrency():
    assert adaptive_retry_timeout(1, 1000.0) == pytest.approx(1e-3)
    assert adaptive_retry_timeout(64, 50000.0) > adaptive_retry_timeout(4, 50000.0)


def test_netchain_throughput_tracks_number_of_servers():
    one = netchain_throughput(num_servers=1, store_size=50, scale=SCALE,
                              duration=0.2, warmup=0.05, concurrency=8)
    four = netchain_throughput(num_servers=4, store_size=50, scale=SCALE,
                               duration=0.2, warmup=0.05, concurrency=8)
    # Each DPDK client server contributes ~20.5 MQPS (Section 8.1).
    assert one.mqps == pytest.approx(20.5, rel=0.2)
    assert four.mqps == pytest.approx(82.0, rel=0.2)
    assert four.qps > 3 * one.qps


def test_netchain_throughput_insensitive_to_value_size():
    small = netchain_throughput(num_servers=2, value_size=16, store_size=50, scale=SCALE,
                                duration=0.15, warmup=0.05, concurrency=8)
    large = netchain_throughput(num_servers=2, value_size=128, store_size=50, scale=SCALE,
                                duration=0.15, warmup=0.05, concurrency=8)
    assert large.qps == pytest.approx(small.qps, rel=0.15)


def test_netchain_loss_degrades_gracefully():
    clean = netchain_throughput(num_servers=2, store_size=50, scale=SCALE,
                                duration=0.2, warmup=0.05, concurrency=32)
    lossy = netchain_throughput(num_servers=2, store_size=50, scale=SCALE,
                                duration=0.2, warmup=0.05, concurrency=32,
                                loss_rate=0.1)
    assert lossy.qps < clean.qps
    # Graceful: well above half of the loss-free throughput is retained
    # (Figure 9(d): 48 of 82 MQPS at 10% loss).
    assert lossy.qps > 0.4 * clean.qps


def test_netchain_server_sweep_returns_one_point_per_count():
    results = netchain_server_sweep(max_servers=2, store_size=30, scale=SCALE,
                                    duration=0.1, warmup=0.02, concurrency=4)
    assert [r.num_load_generators for r in results] == [1, 2]


def test_zookeeper_throughput_drops_with_write_ratio():
    reads = zookeeper_throughput(num_clients=30, store_size=100, write_ratio=0.0,
                                 scale=1000.0, duration=1.5, warmup=0.5)
    writes = zookeeper_throughput(num_clients=30, store_size=100, write_ratio=1.0,
                                  scale=1000.0, duration=1.5, warmup=0.5)
    # Section 8.1: 230 KQPS read-only versus 27 KQPS write-only.
    assert reads.kqps == pytest.approx(230.0, rel=0.5)
    assert writes.kqps < 60.0
    assert writes.qps < reads.qps / 3


def test_netchain_beats_zookeeper_by_orders_of_magnitude():
    netchain = netchain_throughput(num_servers=4, store_size=50, scale=SCALE,
                                   duration=0.15, warmup=0.05, concurrency=8)
    zookeeper = zookeeper_throughput(num_clients=20, store_size=50, write_ratio=0.01,
                                     scale=1000.0, duration=1.0, warmup=0.3)
    assert netchain.qps > 50 * zookeeper.qps


def test_latency_curves_have_expected_magnitudes():
    netchain_points = netchain_latency_curve(concurrency_levels=(1,), num_servers=1,
                                             store_size=20, scale=SCALE,
                                             duration=0.05, warmup=0.01)
    for point in netchain_points:
        assert point.latency_us < 50.0
    zk_points = zookeeper_latency_curve(client_counts=(1,), store_size=20,
                                        duration=0.6, warmup=0.2)
    reads = [p for p in zk_points if p.op == "read"]
    writes = [p for p in zk_points if p.op == "write"]
    assert reads[0].latency_us > 100.0
    assert writes[0].latency_us > 1000.0


def test_failure_experiment_timeline_phases():
    timeline = failure_experiment(virtual_groups=1, store_size=100, scale=SCALE,
                                  fail_at=1.0, detection_delay=0.5,
                                  recovery_start_delay=1.0, run_after_recovery=1.0,
                                  sync_items_per_sec=200.0, bin_width=0.5,
                                  concurrency=8, max_duration=30.0)
    assert timeline.groups_recovered > 0
    assert timeline.baseline_qps > 0
    # The failover window (before the controller reacts) loses most throughput.
    assert timeline.failover_window_qps < 0.5 * timeline.baseline_qps
    # After recovery the cluster is back to full throughput.
    assert timeline.post_recovery_qps > 0.8 * timeline.baseline_qps
    # Recovery costs some throughput (write unavailability).
    assert timeline.recovery_window_qps < timeline.baseline_qps
    assert timeline.series


def test_failure_experiment_virtual_groups_reduce_disruption():
    few = failure_experiment(virtual_groups=1, store_size=120, scale=SCALE,
                             fail_at=1.0, detection_delay=0.2, recovery_start_delay=0.5,
                             run_after_recovery=0.5, sync_items_per_sec=100.0,
                             concurrency=8, max_duration=40.0)
    many = failure_experiment(virtual_groups=16, store_size=120, scale=SCALE,
                              fail_at=1.0, detection_delay=0.2, recovery_start_delay=0.5,
                              run_after_recovery=0.5, sync_items_per_sec=100.0,
                              concurrency=8, max_duration=60.0)
    assert many.recovery_drop_fraction() < few.recovery_drop_fraction()


def test_transaction_experiments_reproduce_figure_11_gap():
    netchain = netchain_transactions(contention_index=0.01, num_clients=5,
                                     cold_items=100, duration=0.01, warmup=0.002)
    zookeeper = zookeeper_transactions(contention_index=0.01, num_clients=2,
                                       cold_items=100, duration=0.6, warmup=0.1)
    assert netchain.txns_per_sec > 0
    assert zookeeper.txns_per_sec > 0
    # Orders of magnitude gap (Figure 11), compared per client.
    assert (netchain.txns_per_sec / netchain.num_clients) > \
        20 * (zookeeper.txns_per_sec / zookeeper.num_clients)


def test_netchain_contention_lowers_transaction_throughput():
    low = netchain_transactions(contention_index=0.01, num_clients=8, cold_items=100,
                                duration=0.01, warmup=0.002)
    high = netchain_transactions(contention_index=1.0, num_clients=8, cold_items=100,
                                 duration=0.01, warmup=0.002)
    assert high.txns_per_sec < low.txns_per_sec
    assert high.aborts > low.aborts


def test_scalability_experiment_linear_growth():
    points = scalability_experiment(sizes=[(2, 4), (8, 16)], samples=500)
    assert points[1].read_bqps > points[0].read_bqps
    assert points[1].write_bqps > points[0].write_bqps
    assert points[0].read_bqps > points[0].write_bqps


def test_table1_rows():
    rows = table1()
    assert len(rows) == 2


def test_deployment_builders():
    netchain = build_deployment(DeploymentSpec(
        backend="netchain", scale=SCALE, store_size=10))
    assert len(netchain.keys) == 10
    assert netchain.cluster.controller.total_items() == 10
    zookeeper = build_deployment(DeploymentSpec(
        backend="zookeeper", scale=1000.0, store_size=10, num_hosts=4,
        replication=3))
    assert len(zookeeper.paths) == 10
    client = zookeeper.new_client(0)
    assert client.get(zookeeper.paths[0]).ok


def test_legacy_builder_shims_warn_and_still_build():
    with pytest.deprecated_call():
        netchain = build_netchain_deployment(scale=SCALE, store_size=10)
    assert len(netchain.keys) == 10
    with pytest.deprecated_call():
        zookeeper = build_zookeeper_deployment(scale=1000.0, store_size=10)
    assert len(zookeeper.paths) == 10
