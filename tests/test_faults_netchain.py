"""Failure-scenario matrix for NetChain: seeded fault schedules under a
concurrent mixed read/write workload, verified by the linearizability
checker and the chain invariants sampled at every fault boundary.

Each scenario runs under every seed of the matrix (``FAULT_SEEDS`` in CI);
``result.consistent()`` requires an empty invariant-violation list AND a
linearizable recorded history with no exhausted key.
"""

from __future__ import annotations

import pytest

from repro.experiments.failures import run_fault_scenario
from tests.conftest import fault_seeds

SEEDS = fault_seeds()


def assert_consistent(result):
    __tracebackhide__ = True
    assert not result.invariant_violations, result.invariant_violations[:3]
    assert not result.linearizability.exhausted_keys()
    assert result.linearizability.ok, result.linearizability.summary()
    assert result.completed_ops > 0


@pytest.mark.parametrize("seed", SEEDS)
def test_single_switch_failure_with_recovery(seed):
    def schedule(s):
        return s.at(0.4, "fail_switch", "S1")

    result = run_fault_scenario(schedule, seed=seed, duration=2.0)
    assert_consistent(result)
    controller = result.deployment.cluster.controller
    detector = result.deployment.cluster.detector
    # The controller learned of the failure from its detector, not from us.
    assert any(name == "S1" for _, name in detector.detections)
    assert "S1" in controller.failed_switches
    reports = controller.recovery_reports
    assert reports and reports[0].finished_at > 0
    assert reports[0].groups_recovered > 0
    # No surviving chain routes through the failed switch.
    for info in controller.chain_table.values():
        assert "S1" not in info.switches
        assert len(set(info.switches)) == len(info.switches)


@pytest.mark.parametrize("seed", SEEDS)
def test_double_switch_failure(seed):
    def schedule(s):
        return s.at(0.4, "fail_switch", "S1").at(1.2, "fail_switch", "S3")

    result = run_fault_scenario(schedule, seed=seed, duration=2.6)
    assert_consistent(result)
    controller = result.deployment.cluster.controller
    assert {"S1", "S3"} <= controller.failed_switches
    # With 2 of 4 members down there is no disjoint replacement left:
    # later recoveries shrink chains to the live members instead.
    for info in controller.chain_table.values():
        assert not ({"S1", "S3"} & set(info.switches))
        assert len(set(info.switches)) == len(info.switches)


@pytest.mark.parametrize("seed", SEEDS)
def test_second_failure_during_recovery(seed):
    def schedule(s, cluster):
        controller = cluster.controller
        return (s.at(0.4, "fail_switch", "S1")
                 .when(lambda: "S1" in controller.recovering,
                       "fail_switch", "S2", label="fail S2 mid-recovery"))

    result = run_fault_scenario(schedule, seed=seed, duration=3.0,
                                sync_items_per_sec=500.0)
    assert_consistent(result)
    controller = result.deployment.cluster.controller
    assert {"S1", "S2"} <= controller.failed_switches
    # Both recoveries terminated (none left hanging mid-protocol).
    assert "S1" not in controller.recovering
    assert "S2" not in controller.recovering
    for info in controller.chain_table.values():
        assert len(set(info.switches)) == len(info.switches)


@pytest.mark.parametrize("seed", SEEDS)
def test_partition_heal_reintroduces_switch(seed):
    def schedule(s):
        return s.at(0.3, "partition", {"S3"}).at(1.0, "heal_partition")

    result = run_fault_scenario(schedule, seed=seed, duration=2.4)
    assert_consistent(result)
    detector = result.deployment.cluster.detector
    controller = result.deployment.cluster.controller
    assert any(name == "S3" for _, name in detector.detections)
    assert any(name == "S3" for _, name in detector.reintroductions)
    assert "S3" not in controller.failed_switches


@pytest.mark.parametrize("seed", SEEDS)
def test_gray_failure_is_detected_and_recovered(seed):
    def schedule(s):
        return s.at(0.4, "gray_fail_switch", "S1").at(1.6, "recover_switch", "S1")

    result = run_fault_scenario(schedule, seed=seed, duration=2.4)
    assert_consistent(result)
    cluster = result.deployment.cluster
    # The gray switch kept forwarding but dropped service traffic...
    assert cluster.topology.switches["S1"].dropped_not_serving > 0
    # ...which the detector caught like a failure.
    assert any(name == "S1" for _, name in cluster.detector.detections)
    assert cluster.controller.recovery_reports


@pytest.mark.parametrize("seed", SEEDS)
def test_lossy_link_write_storm(seed):
    def schedule(s):
        return (s.at(0.2, "set_link_faults", "S0", "S1",
                     loss_rate=0.08, corrupt_rate=0.02, reorder_jitter=30e-6)
                 .at(0.2, "set_link_faults", "S1", "S2",
                     loss_rate=0.08, reorder_jitter=30e-6))

    result = run_fault_scenario(schedule, seed=seed, duration=2.0,
                                write_ratio=0.9)
    assert_consistent(result)
    drops = result.drop_report
    assert drops["S0-S1"]["dropped_loss"] > 0
    assert drops["S0-S1"]["dropped_corrupt"] > 0
    assert drops["S1-S2"]["dropped_loss"] > 0
    # Retries masked the loss: the storm still made progress.
    assert result.completed_ops > 100


@pytest.mark.parametrize("seed", SEEDS)
def test_acceptance_scenario_replays_identically(seed):
    """The flagship schedule: lossy link + switch failure + partition heal
    under a concurrent mixed workload; consistent, and byte-identical on
    rerun with the same seed."""

    def schedule(s):
        return (s.at(0.3, "set_link_faults", "S3", "S0", loss_rate=0.03,
                     reorder_jitter=20e-6)
                 .at(0.5, "fail_switch", "S1")
                 .at(1.4, "partition", {"S3"})
                 .at(1.7, "heal_partition"))

    first = run_fault_scenario(schedule, seed=seed, duration=2.2)
    assert_consistent(first)
    assert first.fault_trace  # something actually happened
    second = run_fault_scenario(schedule, seed=seed, duration=2.2)
    assert first.trace_signature() == second.trace_signature()
    assert first.completed_ops == second.completed_ops
    assert first.failed_ops == second.failed_ops
    assert first.drop_report == second.drop_report
    # The recorded histories are identical operation for operation.
    ops_a = [(op.client, op.op, op.key, op.value, op.invoked_at, op.returned_at,
              op.ok) for op in first.history.ops]
    ops_b = [(op.client, op.op, op.key, op.value, op.invoked_at, op.returned_at,
              op.ok) for op in second.history.ops]
    assert ops_a == ops_b
