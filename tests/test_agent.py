"""Unit/integration tests for the NetChain client agent."""

from __future__ import annotations

import pytest

from repro.core.agent import AgentConfig, NetChainAgent, QueryTimeout
from repro.core.protocol import OpCode, QueryStatus


def test_write_then_read_roundtrip(cluster, agent):
    cluster.controller.populate(["alpha"])
    write = agent.write_sync("alpha", b"value-1")
    assert write.ok and write.status == QueryStatus.OK
    assert write.seq == 1
    read = agent.read_sync("alpha")
    assert read.ok
    assert read.value == b"value-1"
    assert read.version() == write.version()


def test_read_of_unknown_key_reports_not_found(cluster, agent):
    result = agent.read_sync("never-inserted")
    assert not result.ok
    assert result.status == QueryStatus.KEY_NOT_FOUND


def test_sequence_numbers_increase_across_writes(cluster, agent):
    cluster.controller.populate(["k"])
    seqs = [agent.write_sync("k", f"v{i}").seq for i in range(5)]
    assert seqs == [1, 2, 3, 4, 5]


def test_insert_then_write_and_delete(cluster, agent):
    insert = agent.insert_sync("fresh", b"first")
    assert insert.ok
    assert agent.read_sync("fresh").value == b"first"
    delete = agent.delete_sync("fresh")
    assert delete.ok
    assert agent.read_sync("fresh").status == QueryStatus.KEY_NOT_FOUND


def test_cas_semantics(cluster, agent):
    cluster.controller.populate(["lock"])
    assert agent.cas_sync("lock", b"", b"me").status == QueryStatus.OK
    result = agent.cas_sync("lock", b"", b"other")
    assert result.status == QueryStatus.CAS_FAILED
    assert result.value == b"me"
    assert agent.cas_sync("lock", b"me", b"").status == QueryStatus.OK


def test_latency_close_to_paper_value(cluster, agent):
    """Section 8.2: DPDK clients observe ~9.7 us query latency."""
    cluster.controller.populate(["k"])
    result = agent.read_sync("k")
    assert 5e-6 < result.latency < 30e-6
    # The paper reports per-query latency on an idle client; let the scaled
    # NIC finish serializing the previous query before issuing the next.
    cluster.run(until=cluster.sim.now + 1e-3)
    write = agent.write_sync("k", b"v")
    assert 5e-6 < write.latency < 30e-6


def test_reads_and_writes_from_different_hosts_are_consistent(cluster):
    cluster.controller.populate(["shared"])
    writer = cluster.agent("H0")
    reader = cluster.agent("H1")
    writer.write_sync("shared", b"from-h0")
    assert reader.read_sync("shared").value == b"from-h0"


def test_retries_mask_packet_loss(cluster, agent):
    cluster.controller.populate(["k"])
    cluster.topology.set_loss_rate(0.2)
    for i in range(10):
        result = agent.write_sync("k", f"v{i}", deadline=10.0)
        assert result.ok
    assert agent.retransmissions >= 1


def test_query_timeout_after_exhausting_retries(cluster):
    cluster.controller.populate(["k"])
    # All switches drop everything: the query can never succeed.
    cluster.topology.set_loss_rate(1.0)
    impatient = NetChainAgent(cluster.topology.hosts["H2"], cluster.controller,
                              config=AgentConfig(retry_timeout=100e-6, max_retries=2))
    with pytest.raises(QueryTimeout):
        impatient.read_sync("k", deadline=5.0)
    assert impatient.timeouts == 1
    assert impatient.failed == 1


def test_async_callbacks_and_outstanding_tracking(cluster, agent):
    cluster.controller.populate(["a", "b"])
    results = []
    agent.read("a").then(results.append)
    agent.read("b").then(results.append)
    assert agent.outstanding() == 2
    cluster.run(until=cluster.sim.now + 0.01)
    assert len(results) == 2
    assert agent.outstanding() == 0
    assert agent.completed == 2


def test_callback_kwarg_is_deprecated_but_still_fires(cluster, agent):
    cluster.controller.populate(["a"])
    results = []
    with pytest.deprecated_call():
        agent.read("a", callback=results.append)
    cluster.run(until=cluster.sim.now + 0.01)
    assert len(results) == 1
    assert results[0].ok


def test_agent_statistics_separate_reads_and_writes(cluster, agent):
    cluster.controller.populate(["k"])
    agent.write_sync("k", b"v")
    agent.read_sync("k")
    agent.read_sync("k")
    assert agent.read_latency.count() == 2
    assert agent.write_latency.count() == 1
    assert agent.latency.count() == 3


def test_result_logging_opt_in(cluster, agent):
    cluster.controller.populate(["k"])
    agent.log_results = True
    agent.read_sync("k")
    assert len(agent.results_log) == 1
    assert agent.results_log[0].op == OpCode.READ_REPLY


def test_value_sizes_up_to_prototype_limit(cluster, agent):
    """The prototype supports values up to 128 bytes at line rate."""
    cluster.controller.populate(["big"])
    payload = bytes(range(128))
    assert agent.write_sync("big", payload).ok
    assert agent.read_sync("big").value == payload
