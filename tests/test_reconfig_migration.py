"""Migration x faults scenario matrix: planned membership changes under a
concurrent recorded workload, seeded like the failure-scenario matrix
(``FAULT_SEEDS`` in CI), each checked with the per-key linearizability
checker, the chain invariants at every migration commit and fault
boundary, the zero-lost-keys sweep, and replay identity."""

from __future__ import annotations

import pytest

from repro.core.detector import DetectorConfig
from repro.experiments.elasticity import run_reconfig_scenario
from tests.conftest import fault_seeds

SEEDS = fault_seeds()


def assert_consistent(result):
    __tracebackhide__ = True
    assert not result.invariant_violations, result.invariant_violations[:3]
    assert not result.lost_keys, result.lost_keys
    assert not result.linearizability.exhausted_keys()
    assert result.linearizability.ok, result.linearizability.summary()
    assert result.completed_ops > 0
    assert result.migrations and all(rep.done for rep in result.migrations)


@pytest.mark.parametrize("seed", SEEDS)
def test_join_under_load(seed):
    result = run_reconfig_scenario([(0.5, ["S4"], [])], seed=seed, duration=2.0)
    assert_consistent(result)
    report = result.migrations[0]
    assert report.committed_steps() and not report.skipped_steps()
    assert report.total_keys_moved() > 0
    controller = result.deployment.cluster.controller
    assert "S4" in controller.ring.switch_names
    assert any("S4" in info.switches for info in controller.chain_table.values())
    # Freeze windows are per-group, measured, and small.
    for step in report.committed_steps():
        assert 0.0 < step.freeze_window < 0.05


@pytest.mark.parametrize("seed", SEEDS)
def test_leave_under_load(seed):
    result = run_reconfig_scenario([(0.5, [], ["S1"])], seed=seed, duration=2.0)
    assert_consistent(result)
    controller = result.deployment.cluster.controller
    assert "S1" not in controller.ring.switch_names
    assert "S1" not in controller.members
    for info in controller.chain_table.values():
        assert "S1" not in info.switches
        assert len(set(info.switches)) == len(info.switches)


@pytest.mark.parametrize("seed", SEEDS)
def test_double_join_under_load(seed):
    result = run_reconfig_scenario([(0.5, ["S4", "S5"], [])], seed=seed,
                                   duration=2.4)
    assert_consistent(result)
    controller = result.deployment.cluster.controller
    distribution = controller.ring.load_distribution()
    vnodes = controller.config.vnodes_per_switch
    assert distribution["S4"] == vnodes and distribution["S5"] == vnodes
    assert any("S4" in info.switches for info in controller.chain_table.values())
    assert any("S5" in info.switches for info in controller.chain_table.values())


@pytest.mark.parametrize("seed", SEEDS)
def test_joining_switch_fails_mid_migration(seed):
    """The joining switch fail-stops as soon as it is provisioned: the
    coordinator must repair the plan (skip its groups once detected, route
    target chains around it) and the cluster must stay consistent."""

    def kill_joiner(schedule, cluster):
        controller = cluster.controller
        return schedule.when(lambda: "S4" in controller.members,
                             "fail_switch", "S4",
                             label="fail-stop joiner at provision")

    result = run_reconfig_scenario(
        [(0.5, ["S4"], [])], seed=seed, duration=3.5,
        sync_items_per_sec=100.0,
        detector_config=DetectorConfig(probe_interval=10e-3,
                                       suspicion_threshold=1),
        build_schedule=kill_joiner)
    assert_consistent(result)
    assert any(e.kind == "switch_fail" for e in result.fault_trace)
    controller = result.deployment.cluster.controller
    assert "S4" in controller.failed_switches
    # Converged: no serving chain routes through the dead joiner.
    for info in controller.chain_table.values():
        assert "S4" not in info.switches
        assert len(set(info.switches)) == len(info.switches)
    report = result.migrations[0]
    # The dead joiner's own groups were skipped (plan repair) or were
    # committed before detection and then repaired by failure recovery;
    # either way the migration terminated.
    assert report.done


@pytest.mark.parametrize("seed", SEEDS)
def test_member_fails_during_scale_out(seed):
    """An unrelated member dies while the migration is running: failure
    recovery and the coordinator interleave without corrupting a group."""

    def kill_member(schedule, cluster):
        controller = cluster.controller
        return schedule.when(
            lambda: any("S4" in info.switches
                        for info in controller.chain_table.values()),
            "fail_switch", "S2", label="fail S2 mid-migration")

    result = run_reconfig_scenario(
        [(0.5, ["S4"], [])], seed=seed, duration=3.5,
        sync_items_per_sec=300.0,
        build_schedule=kill_member)
    assert_consistent(result)
    controller = result.deployment.cluster.controller
    assert "S2" in controller.failed_switches
    assert "S2" not in controller.recovering
    for info in controller.chain_table.values():
        assert "S2" not in info.switches
        assert len(set(info.switches)) == len(info.switches)


@pytest.mark.parametrize("seed", SEEDS)
def test_acceptance_grow_then_shrink(seed):
    """The flagship elasticity schedule: grow 4 -> 8 under sustained
    read/write load, then shrink 8 -> 6, with zero lost keys, a
    linearizable history, and bounded per-group freeze windows."""
    result = run_reconfig_scenario(
        [(0.4, ["S4", "S5", "S6", "S7"], []),
         (2.2, [], ["S1", "S4"])],
        seed=seed, duration=4.0, sync_items_per_sec=3000.0)
    assert_consistent(result)
    grow, shrink = result.migrations
    controller = result.deployment.cluster.controller
    assert sorted(controller.ring.switch_names) == \
        ["S0", "S2", "S3", "S5", "S6", "S7"]
    assert grow.total_keys_moved() > 0 and shrink.total_keys_moved() > 0
    # Freeze windows: every group's write-unavailability is measured and
    # bounded (well under the client's retry budget of 4ms x ... windows).
    for report in (grow, shrink):
        assert report.max_freeze_window() < 0.05
        assert report.total_freeze_time() > 0
    for info in controller.chain_table.values():
        assert not ({"S1", "S4"} & set(info.switches))


@pytest.mark.parametrize("seed", SEEDS)
def test_scenario_replays_identically(seed):
    """Same seed -> byte-identical fault trace, migration step outcomes,
    and operation history."""

    def kill_joiner(schedule, cluster):
        controller = cluster.controller
        return schedule.when(lambda: "S4" in controller.members,
                             "fail_switch", "S4", label="kill joiner")

    def run():
        return run_reconfig_scenario(
            [(0.5, ["S4"], [])], seed=seed, duration=2.5,
            sync_items_per_sec=300.0, build_schedule=kill_joiner)

    first, second = run(), run()
    assert first.trace_signature() == second.trace_signature()
    assert first.migration_signature() == second.migration_signature()
    assert first.completed_ops == second.completed_ops
    assert first.failed_ops == second.failed_ops
    assert first.drop_report == second.drop_report
    ops_a = [(op.client, op.op, op.key, op.value, op.invoked_at,
              op.returned_at, op.ok) for op in first.history.ops]
    ops_b = [(op.client, op.op, op.key, op.value, op.invoked_at,
              op.returned_at, op.ok) for op in second.history.ops]
    assert ops_a == ops_b
