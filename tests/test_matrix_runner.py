"""The parallel scenario-matrix runner and its serialization contract.

Three properties under test:

* **JSON-alone construction**: every cell descriptor a worker receives is
  a plain dict; spec/workload/checks round-trip through
  ``to_dict``/``from_dict`` with eager validation errors naming the
  offending field.
* **Serial == parallel determinism**: the same :class:`MatrixSpec` run
  with ``workers=1`` and ``workers=N`` produces byte-identical per-cell
  replay signatures and an identical merged report modulo the wall-clock
  fields in :data:`repro.deploy.matrix.WALL_CLOCK_FIELDS`.
* **Merge semantics**: latency recorders fold exactly via their shipped
  state, and ``peak_rss_bytes`` aggregates as max across workers (each
  value is a per-process high-water mark; summing would fabricate
  memory).
"""

from __future__ import annotations

import json

import pytest

from repro.deploy import (
    DeploymentSpec,
    MatrixSpec,
    ScenarioChecks,
    WorkloadSpec,
    canonical_report,
    default_matrix,
    merge_summaries,
    run_cell,
    run_matrix,
)
from repro.netsim.stats import LatencyRecorder

# --------------------------------------------------------------------- #
# Round-trip serialization with eager, named validation errors.
# --------------------------------------------------------------------- #


def test_workload_spec_round_trips():
    workload = WorkloadSpec(num_clients=3, concurrency=4, write_ratio=0.2,
                            think_time=1e-3, zipf_theta=0.9, warmup=0.1,
                            duration=0.7, drain=0.2, unique_values=False)
    assert WorkloadSpec.from_dict(workload.to_dict()) == workload


def test_workload_spec_rejects_unknown_field_by_name():
    with pytest.raises(ValueError, match="num_client_typo"):
        WorkloadSpec.from_dict({"num_client_typo": 3})


def test_workload_spec_validates_eagerly_naming_field():
    with pytest.raises(ValueError, match="warmup"):
        WorkloadSpec.from_dict({"warmup": -1.0})
    with pytest.raises(ValueError, match="think_time"):
        WorkloadSpec(think_time=-1e-3).to_dict()


def test_scenario_checks_round_trips():
    checks = ScenarioChecks(linearizability=False, require_progress=False,
                            history_mode="spill", verify_workers=2,
                            chain_invariants=True, no_lost_keys=True)
    assert ScenarioChecks.from_dict(checks.to_dict()) == checks


def test_scenario_checks_rejects_custom_in_both_directions():
    with pytest.raises(ValueError, match="custom"):
        ScenarioChecks(custom=[lambda r: None]).to_dict()
    with pytest.raises(ValueError, match="custom"):
        ScenarioChecks.from_dict({"custom": []})


def test_scenario_checks_validates_history_mode():
    with pytest.raises(ValueError, match="history_mode"):
        ScenarioChecks.from_dict({"history_mode": "tape"})


def test_deployment_spec_round_trips_faults_and_options():
    spec = DeploymentSpec(backend="netchain", seed=7,
                          faults=[(0.3, "fail_switch", "S1"),
                                  (0.6, "recover_switch", "S1")],
                          options={"detector_config": {"probe_interval": 0.05}})
    rebuilt = DeploymentSpec.from_dict(spec.to_dict())
    assert rebuilt.faults == [(0.3, "fail_switch", "S1"),
                              (0.6, "recover_switch", "S1")]
    assert rebuilt.options == spec.options
    assert rebuilt == spec


def test_deployment_spec_names_non_serializable_option():
    spec = DeploymentSpec(options={"callback": lambda: None})
    with pytest.raises(ValueError, match=r"DeploymentSpec\.options\['callback'\]"):
        spec.to_dict()


def test_matrix_spec_round_trips():
    matrix = default_matrix(seeds=(0, 1))
    rebuilt = MatrixSpec.from_dict(matrix.to_dict())
    assert rebuilt.to_dict() == matrix.to_dict()
    assert [c["cell_id"] for c in rebuilt.cells()] == \
        [c["cell_id"] for c in matrix.cells()]


def test_matrix_spec_validates_axes():
    with pytest.raises(ValueError, match="seeds"):
        MatrixSpec(seeds=[]).validate()
    with pytest.raises(ValueError, match="not a registered backend"):
        MatrixSpec(backends=["netchain", "etcd"]).validate()
    with pytest.raises(ValueError, match="unknown key"):
        MatrixSpec(fault_profiles={"bad": {"fautls": []}}).validate()
    with pytest.raises(ValueError, match="unknown MatrixSpec field"):
        MatrixSpec.from_dict({"seed": [0]})


def test_default_matrix_covers_24_cells():
    matrix = default_matrix(seeds=(0, 1, 2))
    cells = matrix.cells()
    assert len(cells) == 24
    # Deterministic enumeration: ids are unique and ordered.
    ids = [c["cell_id"] for c in cells]
    assert len(set(ids)) == 24
    assert ids == [c["cell_id"] for c in default_matrix(seeds=(0, 1, 2)).cells()]


# --------------------------------------------------------------------- #
# Cells are constructible and runnable from JSON alone.
# --------------------------------------------------------------------- #


def _small_matrix(**overrides):
    defaults = dict(seeds=(0, 1), backends=("netchain", "zookeeper"),
                    duration=0.3)
    defaults.update(overrides)
    matrix = default_matrix(**defaults)
    # One fault profile keeps the grid small: 2 backends x 2 seeds
    # fault-free + 2 netchain fault cells = 6 cells.
    matrix.fault_profiles = {"none": {},
                             "fail-s1": matrix.fault_profiles["fail-s1"]}
    return matrix


def test_run_cell_from_json_string_alone():
    cell = _small_matrix().cells()[0]
    payload = json.dumps(cell, sort_keys=True)
    summary = run_cell(payload)
    assert summary["cell_id"] == cell["cell_id"]
    assert summary["ok"], summary["failures"]
    assert summary["completed_ops"] > 0
    assert len(summary["signature_sha256"]) == 64
    # The shipped summary itself must be JSON-safe (workers pickle it,
    # reports embed it).
    json.dumps(summary, sort_keys=True)


def test_run_cell_is_deterministic():
    cell = json.dumps(_small_matrix().cells()[0], sort_keys=True)
    first, second = run_cell(cell), run_cell(cell)
    for key in ("signature_sha256", "completed_ops", "fault_signature",
                "read_latency"):
        assert first[key] == second[key]


def test_fault_cells_carry_fault_signature():
    matrix = _small_matrix()
    cell = next(c for c in matrix.cells() if c["fault_profile"] == "fail-s1")
    summary = run_cell(json.dumps(cell, sort_keys=True))
    assert summary["ok"], summary["failures"]
    assert summary["fault_signature"] == [[0.3, "switch_fail", "S1", ""]]
    assert summary["invariant_violations"] == []
    assert summary["lost_keys"] == []


# --------------------------------------------------------------------- #
# Serial == parallel determinism.
# --------------------------------------------------------------------- #


def test_serial_and_parallel_runs_merge_identically():
    matrix = _small_matrix()
    serial = run_matrix(matrix, workers=1)
    parallel = run_matrix(matrix, workers=2)
    assert serial["totals"]["cells"] == 6
    assert serial["totals"]["failed_cells"] == []
    # Per-cell replay signatures byte-identical between the two runs.
    serial_sigs = {c["cell_id"]: c["signature_sha256"]
                   for c in serial["cells"]}
    parallel_sigs = {c["cell_id"]: c["signature_sha256"]
                     for c in parallel["cells"]}
    assert serial_sigs == parallel_sigs
    assert serial["signature_sha256"] == parallel["signature_sha256"]
    # The merged reports are identical modulo wall-clock fields.
    assert json.dumps(canonical_report(serial), sort_keys=True) == \
        json.dumps(canonical_report(parallel), sort_keys=True)


def test_on_result_streams_every_cell():
    matrix = _small_matrix(seeds=(0,))
    seen = []
    report = run_matrix(matrix, workers=2,
                        on_result=lambda s, done, total: seen.append(
                            (s["cell_id"], done, total)))
    assert len(seen) == report["totals"]["cells"]
    assert [done for _, done, _ in seen] == list(range(1, len(seen) + 1))


# --------------------------------------------------------------------- #
# Merge semantics.
# --------------------------------------------------------------------- #


def _fake_summary(cell_id: str, rss: int, samples) -> dict:
    recorder = LatencyRecorder()
    for sample in samples:
        recorder.record(sample)
    return {
        "cell_id": cell_id, "backend": "netchain", "seed": 0,
        "fault_profile": "none", "workload": "mixed", "ok": True,
        "failures": [], "completed_ops": len(samples), "failed_ops": 0,
        "read_ops": len(samples), "write_ops": 0, "qps": 0.0,
        "success_qps": 0.0, "scaled_qps": 0.0, "mean_read_latency": 0.0,
        "mean_write_latency": 0.0, "read_latency_p99": 0.0,
        "signature_sha256": "0" * 64, "fault_signature": [],
        "invariant_violations": [], "lost_keys": [], "linearizable": True,
        "verdict_cache_hits": 0, "read_latency": recorder.state_dict(),
        "write_latency": None, "peak_rss_bytes": rss, "wall_clock_s": 0.5,
    }


def test_peak_rss_merges_as_max_across_workers_not_sum():
    summaries = [_fake_summary("a", 100, [1.0]),
                 _fake_summary("b", 300, [2.0]),
                 _fake_summary("c", 200, [3.0])]
    report = merge_summaries(summaries, workers=3, wall_clock_s=1.0)
    assert report["totals"]["peak_rss_bytes"] == 300


def test_latency_recorders_fold_exactly_from_shipped_state():
    summaries = [_fake_summary("a", 1, [1.0, 2.0]),
                 _fake_summary("b", 1, [3.0, 4.0, 5.0])]
    report = merge_summaries(summaries, workers=2, wall_clock_s=1.0)
    direct = LatencyRecorder()
    for sample in (1.0, 2.0, 3.0, 4.0, 5.0):
        direct.record(sample)
    assert report["totals"]["mean_read_latency"] == direct.mean()
    assert report["totals"]["read_latency_p99"] == direct.percentile(99.0)


def test_merge_is_order_independent():
    summaries = [_fake_summary(name, 10, [1.0]) for name in "cab"]
    forward = merge_summaries(summaries, workers=1, wall_clock_s=1.0)
    backward = merge_summaries(list(reversed(summaries)), workers=1,
                               wall_clock_s=1.0)
    assert forward == backward
    assert [c["cell_id"] for c in forward["cells"]] == ["a", "b", "c"]


# --------------------------------------------------------------------- #
# LatencyRecorder state round-trips (the wire format of the merge).
# --------------------------------------------------------------------- #


def test_latency_recorder_state_round_trips_exact_mode():
    recorder = LatencyRecorder()
    for sample in (1e-6, 2e-6, 5e-6):
        recorder.record(sample)
    rebuilt = LatencyRecorder.from_state(recorder.state_dict())
    assert rebuilt.samples == recorder.samples
    assert rebuilt.mean() == recorder.mean()
    assert rebuilt.percentile(99.0) == recorder.percentile(99.0)


def test_latency_recorder_state_round_trips_collapsed_mode():
    recorder = LatencyRecorder(max_exact_samples=4)
    for index in range(10):
        recorder.record((index + 1) * 1e-6)
    assert recorder.collapsed
    state = recorder.state_dict()
    json.dumps(state, sort_keys=True)  # JSON-safe
    rebuilt = LatencyRecorder.from_state(state)
    assert rebuilt.collapsed
    assert rebuilt.count() == recorder.count()
    assert rebuilt.mean() == recorder.mean()
    assert rebuilt.percentile(99.0) == recorder.percentile(99.0)


def test_latency_recorder_state_rejects_unknown_mode():
    with pytest.raises(ValueError, match="unknown mode"):
        LatencyRecorder.from_state({"mode": "approximate"})
