"""The scenario matrix: one seeded scenario on all five backends.

This is the acceptance surface of the declarative deployment API:

* the identical spec + workload + seed runs unmodified on every
  registered backend via :func:`run_scenario`, passing per-key
  linearizability checks;
* the same seed replays byte-identically (operation-level signatures,
  including timestamps, match across runs);
* the NetChain scenario is byte-identical to driving the pre-refactor
  construction path (direct ``ClusterConfig``/``NetChainCluster``
  assembly) by hand with the same seed.
"""

from __future__ import annotations

import random

import pytest

from repro.core import ClusterConfig, NetChainCluster
from repro.core.history import History, check_linearizable
from repro.deploy import (
    DeploymentSpec,
    ScenarioChecks,
    WorkloadSpec,
    available_backends,
    run_scenario,
)
from repro.workloads.clients import LoadClient
from repro.workloads.generators import KeyValueWorkload, WorkloadConfig

SEED = 5
STORE_SIZE = 20
VALUE_SIZE = 32


def matrix_spec(backend: str = "netchain", seed: int = SEED) -> DeploymentSpec:
    return DeploymentSpec(backend=backend, store_size=STORE_SIZE,
                          value_size=VALUE_SIZE, seed=seed)


def matrix_workload() -> WorkloadSpec:
    return WorkloadSpec(num_clients=2, concurrency=2, write_ratio=0.5,
                        duration=0.25, drain=0.25)


@pytest.mark.parametrize("backend", available_backends())
def test_one_seeded_scenario_runs_on_every_backend(backend):
    result = run_scenario(matrix_spec(backend), matrix_workload())
    assert result.ok(), result.failures
    assert result.completed_ops > 0
    assert result.linearizability is not None and result.linearizability.ok
    assert result.backend == backend


@pytest.mark.parametrize("backend", ["netchain", "server-chain", "hybrid"])
def test_same_seed_replays_byte_identically(backend):
    first = run_scenario(matrix_spec(backend), matrix_workload())
    second = run_scenario(matrix_spec(backend), matrix_workload())
    assert first.signature() == second.signature()
    assert len(first.signature()) > 0


def test_different_seeds_differ():
    first = run_scenario(matrix_spec(seed=5), matrix_workload())
    second = run_scenario(matrix_spec(seed=6), matrix_workload())
    assert first.signature() != second.signature()


def test_netchain_scenario_is_byte_identical_to_legacy_construction():
    """Drive the pre-refactor construction path (direct ClusterConfig +
    NetChainCluster + populate, hand-rolled load clients) with the same
    seed and compare the full operation trace -- values, outcomes and
    simulated timestamps must match exactly."""
    workload = matrix_workload()
    via_registry = run_scenario(matrix_spec("netchain"), workload)

    # The pre-refactor path: what build_netchain_deployment(scale=1000.0,
    # store_size=20, value_size=32, seed=5) used to assemble by hand.
    config = ClusterConfig(scale=1000.0, num_hosts=4, vnodes_per_switch=4,
                           store_slots=max(1024, STORE_SIZE + 1024),
                           retry_timeout=500e-6, seed=SEED)
    cluster = NetChainCluster(config)
    keys = cluster.populate(STORE_SIZE, value_size=VALUE_SIZE)
    history = History(cluster.sim)
    agents = cluster.agent_list()
    load_clients = []
    for index in range(workload.num_clients):
        tag = f"c{index}"
        generator = KeyValueWorkload(
            WorkloadConfig(store_size=STORE_SIZE, value_size=VALUE_SIZE,
                           write_ratio=workload.write_ratio,
                           unique_values=True),
            rng=random.Random((SEED << 8) + index + 1), tag=tag)
        load_clients.append(LoadClient(agents[index], generator,
                                       concurrency=workload.concurrency,
                                       history=history, name=tag))
    for client in load_clients:
        client.start()
    cluster.run(until=workload.duration)
    for client in load_clients:
        client.stop()
    cluster.run(until=workload.duration + workload.drain)

    legacy_signature = [(op.client, op.op, op.key, op.value, op.output, op.ok,
                         op.invoked_at, op.returned_at) for op in history.ops]
    assert via_registry.signature() == legacy_signature
    initial = {key.encode("utf-8"): bytes(VALUE_SIZE) for key in keys}
    assert check_linearizable(history, initial=initial).ok


def test_declarative_fault_schedule_in_a_scenario():
    """A spec-level fault event is armed, the detector reacts, and the
    recorded history stays linearizable through failover."""
    spec = DeploymentSpec(backend="netchain", store_size=16, value_size=32,
                          seed=3, vnodes_per_switch=2,
                          faults=[(0.2, "fail_switch", "S1")])
    result = run_scenario(spec, WorkloadSpec(num_clients=2, concurrency=2,
                                             write_ratio=0.4, duration=1.2,
                                             think_time=1e-3, drain=0.5))
    assert result.ok(), result.failures
    assert any(event.kind == "switch_fail" for event in result.fault_trace)
    assert "S1" in result.deployment.cluster.controller.failed_switches


def test_scenario_checks_can_be_tuned():
    checks = ScenarioChecks(linearizability=False, require_progress=True)
    result = run_scenario(matrix_spec("netchain"), matrix_workload(), checks)
    assert result.ok()
    assert result.linearizability is None
    assert result.history is None


def test_scenario_rejects_faults_on_unsupporting_backend(monkeypatch):
    from repro.deploy import get_backend
    backend = get_backend("server-chain")
    monkeypatch.setattr(backend, "capabilities",
                        backend.capabilities.__class__(
                            supports_fault_injection=False))
    spec = matrix_spec("server-chain")
    spec.faults = [(0.1, "fail_switch", "S1")]
    with pytest.raises(ValueError, match="fault injection"):
        run_scenario(spec, matrix_workload())


def test_scaled_throughput_flag_controls_scaling():
    netchain = run_scenario(matrix_spec("netchain"), matrix_workload())
    chain = run_scenario(matrix_spec("server-chain"), matrix_workload())
    assert netchain.scaled_qps == pytest.approx(netchain.success_qps * 1000.0)
    assert chain.scaled_qps == pytest.approx(chain.success_qps)
