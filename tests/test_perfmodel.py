"""Tests for the device constants (Table 1) and the scalability model."""

from __future__ import annotations

import pytest

from repro.perfmodel import (
    DPDK_CLIENT,
    NETBRICKS_SERVER,
    TOFINO,
    ZOOKEEPER_SERVER,
    SpineLeafModel,
    scalability_sweep,
    scaled_dpdk_host_config,
    scaled_kernel_host_config,
    scaled_switch_config,
    table1_rows,
)


def test_table1_reflects_paper_gap():
    """Table 1: switches are orders of magnitude faster than servers."""
    assert TOFINO.packets_per_sec / NETBRICKS_SERVER.packets_per_sec > 100
    assert TOFINO.processing_delay < 1e-6
    assert NETBRICKS_SERVER.processing_delay >= 10e-6
    rows = table1_rows()
    assert len(rows) == 2
    names = [row[0] for row in rows]
    assert "Tofino switch" in names and "NetBricks server" in names
    tofino_row = rows[names.index("Tofino switch")]
    assert "billion" in tofino_row[1]
    assert "Tbps" in tofino_row[2]


def test_device_constants_match_paper_values():
    assert TOFINO.packets_per_sec == pytest.approx(4e9)
    assert DPDK_CLIENT.packets_per_sec == pytest.approx(20.5e6)
    assert ZOOKEEPER_SERVER.packets_per_sec < 1e6


def test_scaled_configs_divide_capacity_not_latency():
    switch = scaled_switch_config(scale=1000.0)
    assert switch.capacity_pps == pytest.approx(4e6)
    assert switch.pipeline_delay == TOFINO.processing_delay
    host = scaled_dpdk_host_config(scale=1000.0)
    assert host.nic_pps == pytest.approx(20.5e3)
    assert host.stack_delay == DPDK_CLIENT.processing_delay
    kernel = scaled_kernel_host_config(scale=10.0)
    assert kernel.stack_delay > host.stack_delay


def test_scaled_config_overrides():
    config = scaled_switch_config(scale=100.0, value_stages=4)
    assert config.value_stages == 4


def test_spine_leaf_model_reads_cheaper_than_writes():
    model = SpineLeafModel(num_spines=4, num_leaves=8, seed=1)
    read_passes = model.average_passes(write=False, samples=500)
    write_passes = model.average_passes(write=True, samples=500)
    assert write_passes > read_passes
    assert model.max_throughput_qps(write=False, samples=500) > \
        model.max_throughput_qps(write=True, samples=500)


def test_spine_leaf_model_rejects_empty_fabric():
    with pytest.raises(ValueError):
        SpineLeafModel(num_spines=0, num_leaves=4)


def test_passes_for_query_counts_transit_hops():
    model = SpineLeafModel(num_spines=2, num_leaves=4, seed=0)
    # Reading from the client's own ToR: out and back through just that leaf.
    assert model.passes_for_query("leaf0", ["leaf0"]) == 1
    # Reading from another leaf: leaf0 -> spine -> leaf1 -> spine -> leaf0.
    assert model.passes_for_query("leaf0", ["leaf1"]) == 5


def test_scalability_sweep_matches_figure_9f_shape():
    points = scalability_sweep(sizes=[(2, 4), (8, 16), (16, 32), (32, 64)],
                               samples=800, seed=0)
    assert [p.num_switches for p in points] == [6, 24, 48, 96]
    reads = [p.read_bqps for p in points]
    writes = [p.write_bqps for p in points]
    # Both series grow monotonically with fabric size (linear scaling).
    assert all(b > a for a, b in zip(reads, reads[1:], strict=False))
    assert all(b > a for a, b in zip(writes, writes[1:], strict=False))
    # Reads outpace writes at every size.
    assert all(r > w for r, w in zip(reads, writes, strict=True))
    # Roughly linear growth: the largest fabric is ~16x the smallest in size
    # and its throughput should grow by a comparable factor.
    assert reads[-1] / reads[0] > 8
    # Absolute magnitude in the same regime as the paper (tens of BQPS).
    assert 20 < reads[-1] < 200
    assert 10 < writes[-1] < 100
