"""Unit tests for the NetChain data-plane program (Algorithm 1).

These tests drive the program directly (no network): they construct query
packets and feed them through ``process`` on hand-built switches, which
makes the protocol behaviours easy to pin down:

* head sequencing and replica version filtering (the Figure 5 scenario),
* chain routing rewrites and reply generation,
* CAS and delete semantics,
* the failure-handling redirect rules of Algorithms 2 and 3.
"""

from __future__ import annotations

from repro.core.kvstore import KVStoreConfig, SwitchKVStore
from repro.core.protocol import (
    NetChainHeader,
    OpCode,
    QueryStatus,
    build_query_packet,
    make_cas,
    make_delete,
    make_read,
    make_write,
    normalize_key,
)
from repro.core.switch_program import NetChainSwitchProgram, RedirectRule
from repro.netsim.engine import Simulator
from repro.netsim.switch import PipelineAction, Switch, SwitchConfig

CLIENT_IP = "10.1.0.1"
CLIENT_PORT = 9001


def make_program(ip="10.0.0.1", slots=64):
    switch = Switch(Simulator(), f"S-{ip}", ip, config=SwitchConfig(capacity_pps=None))
    program = NetChainSwitchProgram(switch, kvstore=SwitchKVStore(
        switch, config=KVStoreConfig(slots=slots)))
    return switch, program


def make_chain(n=3):
    """n programs with consecutive IPs 10.0.0.1 .. 10.0.0.n."""
    switches, programs = [], []
    for i in range(n):
        switch, program = make_program(ip=f"10.0.0.{i + 1}")
        switches.append(switch)
        programs.append(program)
    return switches, programs


def chain_ips(switches):
    return [s.ip for s in switches]


def send(program, switch, header, dst_ip):
    packet = build_query_packet(CLIENT_IP, CLIENT_PORT, dst_ip, header)
    action = program.process(switch, packet, None)
    return packet, action


def run_write_through_chain(switches, programs, key, value, start_index=0):
    """Push a write query through the chain programs in order, returning the
    final packet and action."""
    ips = chain_ips(switches)
    header = make_write(key, value, ips)
    packet = build_query_packet(CLIENT_IP, CLIENT_PORT, ips[0], header)
    action = None
    for switch, program in zip(switches, programs, strict=True):
        if packet.ip.dst_ip != switch.ip:
            continue
        action = program.process(switch, packet, None)
        if action is not PipelineAction.FORWARD:
            break
    return packet, action


# --------------------------------------------------------------------- #
# Basic read/write processing.
# --------------------------------------------------------------------- #

def test_non_netchain_packet_is_ignored():
    switch, program = make_program()
    packet = build_query_packet(CLIENT_IP, CLIENT_PORT, switch.ip,
                                make_read("k", [switch.ip]))
    packet.udp.dst_port = 1234  # not the reserved port
    assert program.process(switch, packet, None) is PipelineAction.CONTINUE


def test_read_returns_value_and_version_as_reply():
    switch, program = make_program()
    loc = program.kvstore.insert_key("k")
    program.kvstore.write_loc(loc, b"hello", seq=4, session=1)
    header = make_read("k", [switch.ip])
    packet, action = send(program, switch, header, switch.ip)
    assert action is PipelineAction.FORWARD
    assert header.op == OpCode.READ_REPLY
    assert header.status == QueryStatus.OK
    assert header.value == b"hello"
    assert (header.session, header.seq) == (1, 4)
    # The reply is addressed back to the client, from the switch.
    assert packet.ip.dst_ip == CLIENT_IP
    assert packet.ip.src_ip == switch.ip
    assert packet.udp.dst_port == CLIENT_PORT


def test_read_miss_replies_not_found():
    switch, program = make_program()
    header = make_read("missing", [switch.ip])
    _, action = send(program, switch, header, switch.ip)
    assert action is PipelineAction.FORWARD
    assert header.status == QueryStatus.KEY_NOT_FOUND
    assert program.stats.misses == 1


def test_read_miss_can_drop_instead():
    switch, program = make_program()
    program.reply_on_miss = False
    header = make_read("missing", [switch.ip])
    _, action = send(program, switch, header, switch.ip)
    assert action is PipelineAction.DROP


def test_head_assigns_monotonic_sequence_numbers():
    switch, program = make_program()
    program.kvstore.insert_key("k")
    seqs = []
    for value in (b"a", b"b", b"c"):
        header = make_write("k", value, [switch.ip])
        send(program, switch, header, switch.ip)
        seqs.append(header.seq)
    assert seqs == [1, 2, 3]
    assert program.kvstore.read("k").value == b"c"


def test_write_traverses_chain_and_replies_from_tail():
    switches, programs = make_chain(3)
    for program in programs:
        program.kvstore.insert_key("k")
    packet, action = run_write_through_chain(switches, programs, "k", b"v1")
    header = packet.payload
    assert action is PipelineAction.FORWARD
    assert header.op == OpCode.WRITE_REPLY
    assert packet.ip.dst_ip == CLIENT_IP
    # All three replicas applied the write with the same version.
    versions = {p.kvstore.read("k").version() for p in programs}
    assert len(versions) == 1
    values = {p.kvstore.read("k").value for p in programs}
    assert values == {b"v1"}


def test_replica_drops_stale_write():
    """The Figure 5 scenario: an old write arriving after a newer one is
    dropped by the sequence check."""
    switch, program = make_program()
    program.kvstore.insert_key("foo")
    # The replica has already applied seq 2 (value C).
    newer = NetChainHeader(op=OpCode.WRITE, key=normalize_key("foo"), value=b"C", seq=2)
    send(program, switch, newer, switch.ip)
    # The delayed older write (seq 1, value B) must be dropped.
    older = NetChainHeader(op=OpCode.WRITE, key=normalize_key("foo"), value=b"B", seq=1)
    _, action = send(program, switch, older, switch.ip)
    assert action is PipelineAction.DROP
    assert program.kvstore.read("foo").value == b"C"
    assert program.stats.writes_stale_dropped == 1


def test_replica_accepts_newer_write():
    switch, program = make_program()
    program.kvstore.insert_key("foo")
    first = NetChainHeader(op=OpCode.WRITE, key=normalize_key("foo"), value=b"B", seq=1)
    send(program, switch, first, switch.ip)
    second = NetChainHeader(op=OpCode.WRITE, key=normalize_key("foo"), value=b"C", seq=2)
    _, action = send(program, switch, second, switch.ip)
    assert action is PipelineAction.FORWARD
    assert program.kvstore.read("foo").value == b"C"


def test_session_number_orders_across_head_changes():
    """A new head with a higher session number wins even with a lower seq
    (Section 5.2: lexicographic (session, seq) ordering)."""
    switch, program = make_program()
    program.kvstore.insert_key("k")
    old_head_write = NetChainHeader(op=OpCode.WRITE, key=normalize_key("k"), value=b"old",
                                    seq=100, session=0)
    send(program, switch, old_head_write, switch.ip)
    new_head_write = NetChainHeader(op=OpCode.WRITE, key=normalize_key("k"), value=b"new",
                                    seq=1, session=1)
    _, action = send(program, switch, new_head_write, switch.ip)
    assert action is PipelineAction.FORWARD
    assert program.kvstore.read("k").value == b"new"
    # And a late write from the old head is now stale.
    late = NetChainHeader(op=OpCode.WRITE, key=normalize_key("k"), value=b"late",
                          seq=101, session=0)
    _, action = send(program, switch, late, switch.ip)
    assert action is PipelineAction.DROP


def test_promoted_head_uses_configured_session():
    switch, program = make_program()
    program.kvstore.insert_key("k")
    program.set_head_session(0, 3)
    header = make_write("k", b"v", [switch.ip], vgroup=0)
    send(program, switch, header, switch.ip)
    assert header.session == 3
    assert program.kvstore.read("k").session == 3


def test_head_session_never_goes_below_stored_session():
    switch, program = make_program()
    loc = program.kvstore.insert_key("k")
    program.kvstore.write_loc(loc, b"x", seq=5, session=7)
    header = make_write("k", b"v", [switch.ip], vgroup=0)
    send(program, switch, header, switch.ip)
    assert header.session == 7
    assert header.seq == 6


# --------------------------------------------------------------------- #
# CAS and delete.
# --------------------------------------------------------------------- #

def test_cas_succeeds_when_expected_matches():
    switch, program = make_program()
    program.kvstore.insert_key("lock")
    header = make_cas("lock", b"", b"owner-1", [switch.ip])
    _, action = send(program, switch, header, switch.ip)
    assert action is PipelineAction.FORWARD
    assert header.op == OpCode.CAS_REPLY
    assert header.status == QueryStatus.OK
    assert program.kvstore.read("lock").value == b"owner-1"


def test_cas_fails_and_returns_current_value():
    switch, program = make_program()
    loc = program.kvstore.insert_key("lock")
    program.kvstore.write_loc(loc, b"owner-1", seq=1)
    header = make_cas("lock", b"", b"owner-2", [switch.ip])
    _, action = send(program, switch, header, switch.ip)
    assert action is PipelineAction.FORWARD
    assert header.status == QueryStatus.CAS_FAILED
    assert header.value == b"owner-1"
    assert program.kvstore.read("lock").value == b"owner-1"
    assert program.stats.cas_failures == 1


def test_cas_failure_does_not_propagate_down_chain():
    switches, programs = make_chain(2)
    for program in programs:
        loc = program.kvstore.insert_key("lock")
        program.kvstore.write_loc(loc, b"owner-1", seq=1)
    ips = chain_ips(switches)
    header = make_cas("lock", b"", b"owner-2", ips)
    packet = build_query_packet(CLIENT_IP, CLIENT_PORT, ips[0], header)
    action = programs[0].process(switches[0], packet, None)
    assert action is PipelineAction.FORWARD
    # The reply goes straight back to the client; the tail never sees it.
    assert packet.ip.dst_ip == CLIENT_IP
    assert programs[1].kvstore.read("lock").value == b"owner-1"


def test_owner_only_release_semantics():
    """Lock release is a CAS comparing the client id (Section 8.5)."""
    switch, program = make_program()
    program.kvstore.insert_key("lock")
    send(program, switch, make_cas("lock", b"", b"client-A", [switch.ip]), switch.ip)
    # Client B cannot release A's lock.
    release_b = make_cas("lock", b"client-B", b"", [switch.ip])
    send(program, switch, release_b, switch.ip)
    assert release_b.status == QueryStatus.CAS_FAILED
    assert program.kvstore.read("lock").value == b"client-A"
    # Client A can.
    release_a = make_cas("lock", b"client-A", b"", [switch.ip])
    send(program, switch, release_a, switch.ip)
    assert release_a.status == QueryStatus.OK
    assert program.kvstore.read("lock").value == b""


def test_delete_invalidates_item():
    switch, program = make_program()
    loc = program.kvstore.insert_key("k")
    program.kvstore.write_loc(loc, b"v", seq=1)
    header = make_delete("k", [switch.ip])
    _, action = send(program, switch, header, switch.ip)
    assert action is PipelineAction.FORWARD
    assert not program.kvstore.read("k").valid
    # A subsequent read reports the key as missing.
    read = make_read("k", [switch.ip])
    send(program, switch, read, switch.ip)
    assert read.status == QueryStatus.KEY_NOT_FOUND


# --------------------------------------------------------------------- #
# Chain routing rewrites.
# --------------------------------------------------------------------- #

def test_write_rewrites_destination_to_next_hop():
    switches, programs = make_chain(3)
    for program in programs:
        program.kvstore.insert_key("k")
    ips = chain_ips(switches)
    header = make_write("k", b"v", ips)
    packet = build_query_packet(CLIENT_IP, CLIENT_PORT, ips[0], header)
    programs[0].process(switches[0], packet, None)
    assert packet.ip.dst_ip == ips[1]
    assert header.chain == [ips[2]]
    programs[1].process(switches[1], packet, None)
    assert packet.ip.dst_ip == ips[2]
    assert header.chain == []


def test_reply_addressed_to_switch_is_dropped():
    switch, program = make_program()
    header = make_read("k", [switch.ip])
    header.op = OpCode.READ_REPLY
    packet = build_query_packet(CLIENT_IP, CLIENT_PORT, switch.ip, header)
    assert program.process(switch, packet, None) is PipelineAction.DROP


def test_inactive_program_drops_queries():
    switch, program = make_program()
    program.kvstore.insert_key("k")
    program.active = False
    header = make_read("k", [switch.ip])
    _, action = send(program, switch, header, switch.ip)
    assert action is PipelineAction.DROP


def test_transit_switch_without_store_misses_politely():
    switch = Switch(Simulator(), "transit", "10.0.0.9", config=SwitchConfig())
    program = NetChainSwitchProgram(switch, kvstore=None, create_store=False)
    header = make_read("k", [switch.ip])
    packet = build_query_packet(CLIENT_IP, CLIENT_PORT, switch.ip, header)
    action = program.process(switch, packet, None)
    assert action is PipelineAction.FORWARD
    assert header.status == QueryStatus.KEY_NOT_FOUND


def test_recirculation_charged_for_oversized_values():
    switch, program = make_program()
    switch.config.value_stages = 2  # one pass carries 32 bytes
    program.kvstore.config.allow_recirculation = True
    program.kvstore.insert_key("big")
    header = make_write("big", bytes(64), [switch.ip])
    send(program, switch, header, switch.ip)
    assert program.stats.recirculations >= 1


# --------------------------------------------------------------------- #
# Failure-handling rules (Algorithms 2 and 3).
# --------------------------------------------------------------------- #

def test_failover_rule_skips_failed_middle_switch():
    switch, program = make_program(ip="10.0.0.1")
    failed_ip, tail_ip = "10.0.0.2", "10.0.0.3"
    program.add_rule(RedirectRule(match_dst_ip=failed_ip, kind="failover", priority=10))
    header = NetChainHeader(op=OpCode.WRITE, key=normalize_key("k"), value=b"v", seq=3,
                            chain=[tail_ip])
    packet = build_query_packet(CLIENT_IP, CLIENT_PORT, failed_ip, header)
    action = program.process(switch, packet, None)
    assert action is PipelineAction.FORWARD
    assert packet.ip.dst_ip == tail_ip
    assert header.chain == []
    assert program.stats.redirects == 1


def test_failover_rule_replies_when_failed_switch_was_last_hop():
    switch, program = make_program(ip="10.0.0.1")
    failed_ip = "10.0.0.2"
    program.add_rule(RedirectRule(match_dst_ip=failed_ip, kind="failover", priority=10))
    header = NetChainHeader(op=OpCode.WRITE, key=normalize_key("k"), value=b"v", seq=3,
                            chain=[])
    packet = build_query_packet(CLIENT_IP, CLIENT_PORT, failed_ip, header)
    action = program.process(switch, packet, None)
    assert action is PipelineAction.FORWARD
    assert header.op == OpCode.WRITE_REPLY
    assert packet.ip.dst_ip == CLIENT_IP


def test_failover_redirect_to_self_processes_locally():
    """The paper's 'N overlaps with S2' case: the rule points the packet at
    the intercepting switch itself, which must then process it."""
    switch, program = make_program(ip="10.0.0.1")
    program.kvstore.insert_key("k")
    failed_ip = "10.0.0.9"
    program.add_rule(RedirectRule(match_dst_ip=failed_ip, kind="failover", priority=10))
    header = NetChainHeader(op=OpCode.WRITE, key=normalize_key("k"), value=b"v", seq=0,
                            chain=[switch.ip, "10.0.0.3"])
    packet = build_query_packet(CLIENT_IP, CLIENT_PORT, failed_ip, header)
    action = program.process(switch, packet, None)
    assert action is PipelineAction.FORWARD
    # The switch acted as (new) head and forwarded to the next hop.
    assert program.kvstore.read("k").value == b"v"
    assert packet.ip.dst_ip == "10.0.0.3"


def test_forward_rule_overrides_failover_by_priority():
    switch, program = make_program(ip="10.0.0.1")
    failed_ip, new_ip = "10.0.0.2", "10.0.0.4"
    program.add_rule(RedirectRule(match_dst_ip=failed_ip, kind="failover", priority=10))
    program.add_rule(RedirectRule(match_dst_ip=failed_ip, kind="forward", priority=20,
                                  new_dst_ip=new_ip))
    header = NetChainHeader(op=OpCode.WRITE, key=normalize_key("k"), value=b"v", seq=1,
                            chain=["10.0.0.3"])
    packet = build_query_packet(CLIENT_IP, CLIENT_PORT, failed_ip, header)
    program.process(switch, packet, None)
    assert packet.ip.dst_ip == new_ip
    assert header.chain == ["10.0.0.3"]  # forward rules do not consume chain hops


def test_drop_rule_scoped_to_virtual_group_and_writes():
    switch, program = make_program(ip="10.0.0.1")
    failed_ip = "10.0.0.2"
    program.add_rule(RedirectRule(match_dst_ip=failed_ip, kind="failover", priority=10))
    program.add_rule(RedirectRule(match_dst_ip=failed_ip, kind="drop", priority=30,
                                  vgroups={7}, write_only=True))
    # A write in vgroup 7 is dropped.
    write = NetChainHeader(op=OpCode.WRITE, key=normalize_key("k"), value=b"v", seq=1,
                           chain=["10.0.0.3"], vgroup=7)
    packet = build_query_packet(CLIENT_IP, CLIENT_PORT, failed_ip, write)
    assert program.process(switch, packet, None) is PipelineAction.DROP
    # A read in vgroup 7 falls through to the failover rule.
    read = NetChainHeader(op=OpCode.READ, key=normalize_key("k"), chain=["10.0.0.3"],
                          vgroup=7)
    packet = build_query_packet(CLIENT_IP, CLIENT_PORT, failed_ip, read)
    assert program.process(switch, packet, None) is PipelineAction.FORWARD
    # A write in another vgroup is unaffected by the drop rule.
    other = NetChainHeader(op=OpCode.WRITE, key=normalize_key("k"), value=b"v", seq=1,
                           chain=["10.0.0.3"], vgroup=8)
    packet = build_query_packet(CLIENT_IP, CLIENT_PORT, failed_ip, other)
    assert program.process(switch, packet, None) is PipelineAction.FORWARD


def test_rule_removal():
    switch, program = make_program()
    rule_a = program.add_rule(RedirectRule(match_dst_ip="10.0.0.2", kind="failover"))
    program.add_rule(RedirectRule(match_dst_ip="10.0.0.2", kind="drop", priority=5))
    program.add_rule(RedirectRule(match_dst_ip="10.0.0.3", kind="drop", priority=5))
    program.remove_rule(rule_a)
    assert len(program.rules) == 2
    removed = program.remove_rules_matching(dst_ip="10.0.0.2", kind="drop")
    assert removed == 1
    assert len(program.rules) == 1
    program.remove_rule(rule_a)  # already gone; no error


def test_multiple_failures_chained_redirects():
    """Two consecutive failed switches are skipped in one pass."""
    switch, program = make_program(ip="10.0.0.1")
    failed_1, failed_2, tail = "10.0.0.2", "10.0.0.3", "10.0.0.4"
    program.add_rule(RedirectRule(match_dst_ip=failed_1, kind="failover", priority=10))
    program.add_rule(RedirectRule(match_dst_ip=failed_2, kind="failover", priority=10))
    header = NetChainHeader(op=OpCode.WRITE, key=normalize_key("k"), value=b"v", seq=2,
                            chain=[failed_2, tail])
    packet = build_query_packet(CLIENT_IP, CLIENT_PORT, failed_1, header)
    action = program.process(switch, packet, None)
    assert action is PipelineAction.FORWARD
    assert packet.ip.dst_ip == tail
    assert header.chain == []
