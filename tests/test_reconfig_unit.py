"""Unit tests for the elastic reconfiguration subsystem: planner diffs,
incremental ring rebalancing, hot-plug, and the migration coordinator on a
quiet cluster (the under-load scenario matrix lives in
``tests/test_reconfig_migration.py``)."""

from __future__ import annotations

import pytest

from repro.core.reconfig import MigrationCoordinator, ReconfigConfig, ReconfigPlanner
from repro.core.ring import ConsistentHashRing

MEMBERS = ["S0", "S1", "S2", "S3"]


def run_until_done(cluster, coordinator, max_time: float = 60.0):
    deadline = cluster.sim.now + max_time
    while not coordinator.done and cluster.sim.now < deadline:
        cluster.run(until=cluster.sim.now + 0.25)
    assert coordinator.done, "migration did not finish in time"
    return coordinator.report


# --------------------------------------------------------------------- #
# Incremental ring rebalancing.
# --------------------------------------------------------------------- #

def test_ring_add_switch_is_stable():
    ring = ConsistentHashRing(MEMBERS, vnodes_per_switch=20)
    before = {f"key{i}": ring.chain_for_key(f"key{i}") for i in range(300)}
    before_vnodes = dict(ring.vnodes)
    new_ids = ring.add_switch("S4")
    assert len(new_ids) == 20
    # Every pre-existing vnode is untouched (same id, switch, position).
    for vid, vnode in before_vnodes.items():
        assert ring.vnodes[vid] == vnode
    moved = sum(1 for key, chain in before.items()
                if ring.chain_for_key(key) != chain)
    # Minimal movement: only segments/chains touching S4's vnodes change.
    assert 0 < moved < len(before)
    # Membership helpers see the new switch.
    assert "S4" in ring.switch_names
    assert len(ring.virtual_nodes_of("S4")) == 20


def test_ring_add_then_remove_restores_mapping():
    ring = ConsistentHashRing(MEMBERS, vnodes_per_switch=10)
    before = {f"key{i}": ring.chain_for_key(f"key{i}") for i in range(200)}
    ring.add_switch("S4")
    ring.remove_switch("S4")
    after = {key: ring.chain_for_key(key) for key in before}
    assert before == after


def test_ring_remove_below_replication_rejected():
    ring = ConsistentHashRing(["A", "B", "C"], vnodes_per_switch=4, replication=3)
    with pytest.raises(ValueError):
        ring.remove_switch("A")
    with pytest.raises(ValueError):
        ring.remove_switch("unknown")


def test_ring_clone_is_independent():
    ring = ConsistentHashRing(MEMBERS, vnodes_per_switch=5)
    clone = ring.clone()
    clone.add_switch("S4")
    assert "S4" not in ring.switch_names
    assert len(ring.vnodes) == 20
    assert len(clone.vnodes) == 25
    # Unchanged vnodes are shared by value, not by object.
    for vid in ring.vnodes:
        assert clone.vnodes[vid] == ring.vnodes[vid]


def test_ring_insert_and_remove_vnode_flip_single_segment():
    ring = ConsistentHashRing(MEMBERS, vnodes_per_switch=5)
    target = ring.clone()
    new_ids = target.add_switch("S4")
    vnode = target.vnodes[new_ids[0]]
    ring.insert_vnode(vnode)
    assert ring.vnodes[vnode.vnode_id].switch == "S4"
    assert "S4" in ring.switch_names
    removed = ring.remove_vnode(vnode.vnode_id)
    assert removed.vnode_id == vnode.vnode_id
    # The last vnode of S4 gone -> S4 leaves the membership.
    assert "S4" not in ring.switch_names


def test_ring_key_position_ignores_wire_padding():
    ring = ConsistentHashRing(MEMBERS)
    from repro.core.protocol import normalize_key
    assert ring.key_position("abc") == ring.key_position(normalize_key("abc"))
    assert ring.vgroup_for_key("abc") == ring.vgroup_for_key(normalize_key("abc"))


# --------------------------------------------------------------------- #
# The planner.
# --------------------------------------------------------------------- #

def test_planner_join_plan_is_minimal(cluster):
    controller = cluster.controller
    cluster.populate(120)
    cluster.add_switch("S4")
    plan = ReconfigPlanner(controller).plan(MEMBERS + ["S4"])
    assert plan.joins == ["S4"] and plan.leaves == []
    new_groups = [s for s in plan.steps if s.kind == "new-group"]
    assert len(new_groups) == controller.config.vnodes_per_switch
    # New groups are scheduled before everything else.
    assert all(s.new_vnode is not None for s in plan.steps[:len(new_groups)])
    # Minimality: groups whose chain and keys are unaffected do not appear.
    planned = {s.vgroup for s in plan.steps}
    untouched = set(controller.chain_table) - planned
    assert untouched, "expected some groups to be untouched by one join"
    for vgroup in untouched:
        assert list(controller.chain_table[vgroup].switches) == \
            plan.target_ring.chain_for_vgroup(vgroup)
    # Roughly 1/(n+1) of the keys move (loose bounds; 4 -> 5 switches).
    assert 0.0 < plan.moved_fraction() < 0.6


def test_planner_rejects_bad_targets(cluster):
    planner = ReconfigPlanner(cluster.controller)
    with pytest.raises(ValueError):
        planner.plan(["S0", "S1"])  # below replication
    with pytest.raises(ValueError):
        planner.plan(["S0", "S1", "S2", "S2"])  # duplicate
    with pytest.raises(ValueError):
        planner.plan(MEMBERS + ["S9"])  # not in the topology


def test_planner_noop_for_identical_membership(cluster):
    cluster.populate(50)
    plan = ReconfigPlanner(cluster.controller).plan(MEMBERS)
    assert plan.steps == []
    assert plan.summary().startswith("join [] leave []")


# --------------------------------------------------------------------- #
# Hot-plug.
# --------------------------------------------------------------------- #

def test_hot_plug_switch_into_running_cluster(cluster):
    cluster.populate(10)
    cluster.run(until=0.1)  # the simulation is genuinely running
    switch = cluster.add_switch("S4")
    controller = cluster.controller
    assert "S4" in cluster.topology.switches
    assert "S4" in controller.members
    assert controller.programs["S4"].kvstore is not None
    assert controller.stores["S4"].used_slots() == 0
    # Physically wired into the ring (default: last + first member).
    neighbor_names = {n.name for n in switch.neighbors()}
    assert neighbor_names == {"S3", "S0"}
    # Underlay routes reach it: an agent can address it directly.
    assert cluster.topology.node("H0") is not None
    from repro.netsim.routing import path_between
    path = path_between(cluster.topology, "H0", "S4")
    assert path[0] == "H0" and path[-1] == "S4"


def test_hot_plug_duplicate_name_rejected(cluster):
    with pytest.raises(ValueError):
        cluster.add_switch("S1")


# --------------------------------------------------------------------- #
# The coordinator on a quiet cluster.
# --------------------------------------------------------------------- #

def test_scale_out_moves_keys_and_serves_them(cluster):
    controller = cluster.controller
    keys = cluster.populate(80)
    agent = cluster.agent("H0")
    for key in keys[:30]:
        assert agent.write_sync(key, b"before").ok
    cluster.add_switch("S4")
    coordinator = cluster.migrate(MEMBERS + ["S4"])
    report = run_until_done(cluster, coordinator)
    assert report.total_keys_moved() > 0
    assert not report.skipped_steps()
    # S4 now serves groups; the ring is balanced.
    assert any("S4" in info.switches for info in controller.chain_table.values())
    assert controller.ring.load_distribution()["S4"] == \
        controller.config.vnodes_per_switch
    # Every key readable with the pre-migration value.
    for key in keys[:30]:
        assert agent.read_sync(key).value == b"before"
    # Writes keep working, including on migrated groups.
    for key in keys:
        assert agent.write_sync(key, b"after").ok
    # Freeze windows were measured and bounded.
    assert report.max_freeze_window() > 0
    assert report.max_freeze_window() < 0.1


def test_scale_out_bumps_epochs_and_gcs_old_copies(cluster):
    controller = cluster.controller
    keys = cluster.populate(60)
    epochs_before = dict(controller.epochs)
    cluster.add_switch("S4")
    coordinator = cluster.migrate(MEMBERS + ["S4"])
    report = run_until_done(cluster, coordinator)
    committed = report.committed_steps()
    assert committed
    for step in committed:
        assert controller.epochs[step.vgroup] > epochs_before.get(step.vgroup, 0)
        # The data plane knows the new epoch on every switch.
        for program in controller.programs.values():
            assert program.vgroup_epochs.get(step.vgroup) == \
                controller.epochs[step.vgroup]
        # No group is left frozen.
        for program in controller.programs.values():
            assert step.vgroup not in program.frozen_write_vgroups
    # Let garbage collection run, then check moved keys left the old owners.
    cluster.run(until=cluster.sim.now + 1.0)
    for key in keys:
        info = controller.chain_table[controller.ring.vgroup_for_key(key)]
        holders = [name for name, store in controller.stores.items()
                   if store.read(key) is not None]
        assert sorted(holders) == sorted(info.switches), key


def test_scale_in_drains_and_decommissions(cluster):
    controller = cluster.controller
    keys = cluster.populate(80)
    agent = cluster.agent("H0")
    for key in keys[:20]:
        assert agent.write_sync(key, b"v").ok
    coordinator = cluster.migrate(["S0", "S2", "S3"])
    report = run_until_done(cluster, coordinator)
    assert coordinator.plan.leaves == ["S1"]
    # S1 serves nothing and is no longer a probed member.
    for info in controller.chain_table.values():
        assert "S1" not in info.switches
        assert len(set(info.switches)) == len(info.switches)
    assert "S1" not in controller.members
    assert controller.ring.virtual_nodes_of("S1") == []
    # Its groups were absorbed: every key still readable and writable.
    for key in keys[:20]:
        assert agent.read_sync(key).value == b"v"
    for key in keys:
        assert agent.write_sync(key, b"w").ok
    assert report.total_keys_moved() > 0


def test_abort_skips_remaining_steps(cluster):
    controller = cluster.controller
    cluster.populate(60)
    cluster.add_switch("S4")
    plan = ReconfigPlanner(controller).plan(MEMBERS + ["S4"])
    coordinator = MigrationCoordinator(
        controller, plan,
        config=ReconfigConfig(sync_items_per_sec=100.0))
    coordinator.start()

    def abort_after_first_commit() -> None:
        if any(s.status == "committed" for s in coordinator.report.steps):
            coordinator.abort()
        elif not coordinator.done:
            cluster.sim.schedule(1e-3, abort_after_first_commit)

    cluster.sim.schedule(1e-3, abort_after_first_commit)
    report = run_until_done(cluster, coordinator)
    assert report.aborted
    assert report.committed_steps()
    assert report.skipped_steps()
    # Committed groups stay committed and consistent; nothing is frozen.
    from repro.core.invariants import sample_chain_invariants
    assert not sample_chain_invariants(controller, raise_on_violation=False)
    for program in controller.programs.values():
        assert not program.frozen_write_vgroups


def test_aborted_leave_keeps_serving_switch_as_member(cluster):
    """An aborted scale-in must not decommission a leaver that still
    serves chains: it has to stay a probed member so the failure detector
    keeps covering it."""
    controller = cluster.controller
    keys = cluster.populate(60)
    plan = ReconfigPlanner(controller).plan(["S0", "S2", "S3"])
    coordinator = MigrationCoordinator(
        controller, plan, config=ReconfigConfig(sync_items_per_sec=100.0))
    coordinator.start()
    coordinator.abort()  # the in-flight group finishes, the rest skip
    report = run_until_done(cluster, coordinator)
    assert report.aborted
    assert report.skipped_steps()
    # S1 still serves its chains, so it stays a member and keeps its vnodes.
    assert any("S1" in info.switches for info in controller.chain_table.values())
    assert "S1" in controller.members
    assert controller.ring.virtual_nodes_of("S1")
    # The cluster still works end to end.
    agent = cluster.agent("H0")
    assert agent.write_sync(keys[0], b"v").ok


def test_migration_start_is_single_shot(cluster):
    cluster.populate(10)
    cluster.add_switch("S4")
    plan = ReconfigPlanner(cluster.controller).plan(MEMBERS + ["S4"])
    coordinator = MigrationCoordinator(cluster.controller, plan)
    coordinator.start()
    with pytest.raises(RuntimeError):
        coordinator.start()
