"""Out-of-core history store: spill format, index, streaming checker.

Covers the storage layer (NDJSON round trips, per-key offset index,
rebuild, crash safety), the streaming verification pipeline (agreement
with the in-memory checker, worker pool, verdict memoization), the
record-time key canonicalization contract, and the scenario integration
(``history_mode="spill"`` replays byte-identically to memory mode and
bounds peak memory).
"""

from __future__ import annotations

import json
import tracemalloc

import pytest

from repro.core.client import canonical_key
from repro.core.history import History, HistoryOp, check_linearizable
from repro.core.history_gen import generate_history, initial_values, iter_history
from repro.core.history_store import (
    HistoryStore,
    HistoryWriter,
    SpillingHistory,
    TruncatedHistoryError,
    VerdictCache,
    check_linearizable_streaming,
    decode_bytes,
    encode_bytes,
    iter_ndjson,
    load_ndjson,
    main as store_cli,
    op_to_record,
    rebuild_index,
    record_to_op,
    write_ndjson,
)
from repro.deploy import DeploymentSpec, ScenarioChecks, WorkloadSpec, run_scenario


def write_run(run_dir, ops, meta=None):
    with HistoryWriter(run_dir, meta=meta) as writer:
        for op in ops:
            writer.append(op)
    return HistoryStore(run_dir)


# --------------------------------------------------------------------- #
# Record encoding.
# --------------------------------------------------------------------- #

def test_bytes_encoding_round_trips():
    for data in (b"plain", b"", b"\x00\xff\x10", b"hex:dec0y", b" spaces ",
                 b"k\x00\x00"):
        assert decode_bytes(encode_bytes(data)) == data
    assert encode_bytes(None) is None and decode_bytes(None) is None
    # Binary data is hex-escaped; a literal "hex:" prefix must be too,
    # or decoding would misread it.
    assert encode_bytes(b"\x00\x01") == "hex:0001"
    assert encode_bytes(b"hex:dec0y").startswith("hex:")


def test_op_record_round_trips_every_field():
    op = HistoryOp(op_id=7, client="c1", op="cas", key=b"key-1",
                   value=b"new", expected=b"old", invoked_at=1.25,
                   returned_at=2.5, ok=False, output=None, not_found=False,
                   cas_failed=True, timed_out=False, retries=3,
                   version=(2, 9))
    assert record_to_op(op_to_record(op)) == op
    pending = HistoryOp(op_id=0, client="c0", op="write", key=b"k",
                        value=b"v", invoked_at=0.5)
    back = record_to_op(op_to_record(pending))
    assert back == pending and not back.completed and back.ambiguous


# --------------------------------------------------------------------- #
# Writer + store.
# --------------------------------------------------------------------- #

def test_writer_builds_per_key_streams_and_index(tmp_path):
    gen = generate_history(3, clients=3, keys=4, ops=200)
    store = write_run(tmp_path / "run", gen.ops, meta={"seed": 3})
    assert len(store) == 200
    assert store.meta["seed"] == 3
    assert sum(store.key_count(key) for key in store.keys()) == 200
    for key in store.keys():
        ops = store.ops_for_key(key)
        assert ops and all(op.key == key for op in ops)
    # Sequential iteration sees the same records as indexed access.
    by_id = sorted(store.iter_ops(), key=lambda op: op.op_id)
    assert [op.op_id for op in by_id] == list(range(200))


def test_padded_and_unpadded_key_spellings_share_one_stream(tmp_path):
    """Record-time canonicalization: the wire pads keys to 16 bytes with
    NULs, clients use the raw string -- both spellings are one key, in the
    in-memory history and in the spilled run alike."""
    padded, unpadded = b"kv-7" + b"\x00" * 12, b"kv-7"
    assert canonical_key(padded) == canonical_key(unpadded) == unpadded

    class FakeSim:
        now = 0.0

    history = History(FakeSim())
    a = history.invoke("c0", "write", padded, value=b"x")
    b = history.invoke("c1", "read", unpadded)
    assert a.key == b.key == unpadded
    assert list(history.per_key()) == [unpadded]

    ops = [HistoryOp(op_id=0, client="c0", op="write", key=padded,
                     value=b"x", invoked_at=1.0, returned_at=2.0, ok=True),
           HistoryOp(op_id=1, client="c1", op="read", key=unpadded,
                     invoked_at=3.0, returned_at=4.0, ok=True, output=b"x")]
    store = write_run(tmp_path / "run", ops)
    assert store.keys() == [unpadded]
    assert store.key_count(unpadded) == 2
    # The padded spelling queries the same stream.
    assert [op.op_id for op in store.ops_for_key(padded)] == [0, 1]


def test_initial_values_round_trip_through_meta(tmp_path):
    class FakeSim:
        now = 0.0

    initial = {b"a" + b"\x00" * 3: b"va", b"b": None}
    spilling = SpillingHistory(FakeSim(), tmp_path / "run", initial=initial)
    record = spilling.invoke("c0", "read", b"a")

    class Result:
        ok = True
        not_found = cas_failed = timed_out = False
        retries = 0
        value = b"va"
        raw = None

    spilling.complete(record, Result())
    store = spilling.finish()
    assert store.initial_values() == {b"a": b"va", b"b": None}
    # The recorded initial state feeds the check when none is passed.
    assert check_linearizable_streaming(store).ok


# --------------------------------------------------------------------- #
# Crash safety.
# --------------------------------------------------------------------- #

def test_truncated_file_surfaces_clean_error_with_offset(tmp_path):
    gen = generate_history(5, clients=2, keys=2, ops=50)
    store = write_run(tmp_path / "run", gen.ops)
    path = store.ops_path
    data = path.read_bytes()
    lines = data.splitlines(keepends=True)
    intact = b"".join(lines[:-1])
    path.write_bytes(intact + lines[-1][:10])  # cut the last record short

    with pytest.raises(TruncatedHistoryError) as exc_info:
        list(iter_ndjson(path))
    err = exc_info.value
    assert err.offset == len(intact)
    assert str(err.offset) in str(err) and "truncated" in str(err)

    # Corrupt JSON mid-file is reported the same way, not as a raw
    # json.JSONDecodeError traceback.
    garbled = intact[:len(lines[0]) + len(lines[1])] + b'{"id": oops}\n'
    path.write_bytes(garbled)
    with pytest.raises(TruncatedHistoryError) as exc_info:
        list(iter_ndjson(path))
    assert exc_info.value.offset == len(lines[0]) + len(lines[1])


def test_index_rebuilds_from_intact_prefix(tmp_path):
    gen = generate_history(6, clients=2, keys=2, ops=50)
    store = write_run(tmp_path / "run", gen.ops)
    path = store.ops_path
    data = path.read_bytes()
    cut = data.splitlines(keepends=True)
    path.write_bytes(b"".join(cut[:-1]) + cut[-1][:5])

    with pytest.raises(TruncatedHistoryError):
        rebuild_index(tmp_path / "run")
    total, truncated_at = rebuild_index(tmp_path / "run",
                                        allow_truncated=True)
    assert total == 49
    assert truncated_at == len(b"".join(cut[:-1]))
    recovered = HistoryStore(tmp_path / "run")
    assert len(recovered) == 49
    assert sorted(op.op_id for op in recovered.iter_ops()) == list(range(49))


def test_stale_index_is_detected_not_garbled(tmp_path):
    store = write_run(tmp_path / "run",
                      generate_history(7, keys=1, ops=10).ops)
    # Truncate the data file *without* rebuilding the index: indexed reads
    # past the end must fail cleanly.
    data = store.ops_path.read_bytes()
    store.ops_path.write_bytes(data[: len(data) - 20])
    with pytest.raises(TruncatedHistoryError):
        HistoryStore(tmp_path / "run").ops_for_key(b"k0")


# --------------------------------------------------------------------- #
# Streaming checker.
# --------------------------------------------------------------------- #

def test_streaming_matches_memory_and_workers_match_serial(tmp_path):
    gen = generate_history(11, clients=6, keys=10, ops=600,
                           timeout_rate=0.05)
    store = write_run(tmp_path / "run", list(gen.ops))
    memory = check_linearizable(gen.ops, initial=gen.initial)
    serial = check_linearizable_streaming(store, initial=gen.initial)
    parallel = check_linearizable_streaming(store, initial=gen.initial,
                                            workers=2)
    assert memory.ok == serial.ok == parallel.ok is True
    for key in store.keys():
        assert (memory.keys[key].ok, memory.keys[key].ops) == \
            (serial.keys[key].ok, serial.keys[key].ops) == \
            (parallel.keys[key].ok, parallel.keys[key].ops)


def test_verdict_cache_memoizes_by_stream_content(tmp_path):
    gen = generate_history(13, clients=3, keys=6, ops=300)
    store = write_run(tmp_path / "a", list(gen.ops))
    cache = VerdictCache()
    first = check_linearizable_streaming(store, initial=gen.initial,
                                         cache=cache)
    second = check_linearizable_streaming(store, initial=gen.initial,
                                          cache=cache)
    assert first.cache_hits == 0
    assert second.cache_hits == len(store.keys())
    assert first.ok == second.ok
    assert {k: r.ok for k, r in first.keys.items()} == \
        {k: r.ok for k, r in second.keys.items()}

    # A different initial value is a different verdict: no false hits.
    shifted = dict(gen.initial)
    shifted[store.keys()[0]] = b"something-else"
    third = check_linearizable_streaming(store, initial=shifted, cache=cache)
    assert third.cache_hits == len(store.keys()) - 1

    # The cache persists and reloads.
    path = tmp_path / "verdicts.json"
    stored = VerdictCache(path)
    check_linearizable_streaming(store, initial=gen.initial, cache=stored)
    stored.save()
    reloaded = VerdictCache(path)
    again = check_linearizable_streaming(store, initial=gen.initial,
                                         cache=reloaded)
    assert again.cache_hits == len(store.keys())


def test_streaming_flags_the_corrupted_keys(tmp_path):
    gen = generate_history(17, clients=4, keys=5, ops=400,
                           corruption_rate=0.05)
    assert gen.corrupted_keys  # the seed must actually corrupt something
    store = write_run(tmp_path / "run", list(gen.ops))
    report = check_linearizable_streaming(store, initial=gen.initial)
    assert not report.ok
    flagged = sorted(k for k, r in report.keys.items() if not r.ok)
    assert flagged == sorted(gen.corrupted_keys)


# --------------------------------------------------------------------- #
# CLI.
# --------------------------------------------------------------------- #

def test_cli_check_index_info(tmp_path, capsys):
    run_dir = tmp_path / "run"
    write_run(run_dir, generate_history(19, keys=3, ops=120).ops,
              meta={"initial": {encode_bytes(k): encode_bytes(v)
                                for k, v in initial_values(3).items()}})
    assert store_cli(["info", str(run_dir)]) == 0
    out = capsys.readouterr().out
    assert "ops: 120" in out and "keys: 3" in out

    assert store_cli(["check", str(run_dir), "--cache",
                      str(tmp_path / "cache.json")]) == 0
    assert "linearizable" in capsys.readouterr().out
    # Second check hits the persisted cache for every key.
    assert store_cli(["check", str(run_dir), "--cache",
                      str(tmp_path / "cache.json")]) == 0
    assert "verdict cache hits: 3/3" in capsys.readouterr().out

    (run_dir / "index.json").unlink()
    (run_dir / "index.bin").unlink()
    assert store_cli(["index", str(run_dir)]) == 0
    assert store_cli(["check", str(run_dir)]) == 0

    bad = tmp_path / "bad"
    ops = load_ndjson_ops()
    write_run(bad, ops)
    assert store_cli(["check", str(bad)]) == 1


def load_ndjson_ops():
    """A tiny non-linearizable history (stale read)."""
    return [
        HistoryOp(op_id=0, client="c0", op="write", key=b"k", value=b"B",
                  invoked_at=1.0, returned_at=2.0, ok=True),
        HistoryOp(op_id=1, client="c1", op="read", key=b"k",
                  invoked_at=3.0, returned_at=4.0, ok=True, output=b"B"),
        HistoryOp(op_id=2, client="c1", op="read", key=b"k",
                  invoked_at=5.0, returned_at=6.0, ok=True, output=b"Z"),
    ]


def test_write_ndjson_standalone_round_trip(tmp_path):
    path = tmp_path / "history.ndjson"
    ops = load_ndjson_ops()
    write_ndjson(path, ops, meta={"name": "stale-read"})
    loaded = load_ndjson(path)
    assert loaded == ops
    header = json.loads(path.read_bytes().splitlines()[0])
    assert header["schema"] == "history/v1"
    assert header["meta"]["name"] == "stale-read"


# --------------------------------------------------------------------- #
# Scenario integration.
# --------------------------------------------------------------------- #

SPEC = DeploymentSpec(backend="netchain", store_size=16, seed=9)
WORKLOAD = WorkloadSpec(duration=0.4)


def test_scenario_spill_replays_identically_to_memory(tmp_path):
    memory = run_scenario(SPEC, WORKLOAD)
    spill_a = run_scenario(SPEC, WORKLOAD, ScenarioChecks(
        history_mode="spill", run_dir=tmp_path / "a",
        verdict_cache=VerdictCache()))
    spill_b = run_scenario(SPEC, WORKLOAD, ScenarioChecks(
        history_mode="spill", run_dir=tmp_path / "b",
        verdict_cache=VerdictCache()))
    assert memory.ok(), memory.failures
    assert spill_a.ok(), spill_a.failures
    assert memory.signature() == spill_a.signature() == spill_b.signature()
    # Two spilled runs of the same seed are byte-identical on disk (minus
    # the self-describing run path, which lives outside the data file).
    assert (tmp_path / "a" / "ops.ndjson").read_bytes() == \
        (tmp_path / "b" / "ops.ndjson").read_bytes()
    assert spill_a.run_dir == tmp_path / "a"
    assert spill_a.peak_rss_bytes > 0
    assert spill_a.linearizability is not None and spill_a.linearizability.ok


def test_scenario_spill_shares_verdicts_across_the_matrix(tmp_path):
    cache = VerdictCache()
    first = run_scenario(SPEC, WORKLOAD, ScenarioChecks(
        history_mode="spill", run_dir=tmp_path / "a", verdict_cache=cache))
    second = run_scenario(SPEC, WORKLOAD, ScenarioChecks(
        history_mode="spill", run_dir=tmp_path / "b", verdict_cache=cache))
    assert first.verdict_cache_hits == 0
    assert second.verdict_cache_hits == len(second.linearizability.keys)


def test_scenario_rejects_unknown_history_mode():
    with pytest.raises(ValueError, match="history_mode"):
        run_scenario(SPEC, WORKLOAD, ScenarioChecks(history_mode="disk"))


# --------------------------------------------------------------------- #
# Bounded memory.
# --------------------------------------------------------------------- #

def test_spill_pipeline_peaks_well_below_in_memory(tmp_path):
    """The acceptance bound: spilling + streaming verification must peak
    at <= 1/4 of the in-memory equivalent (same ops, same checker
    semantics).  Measured with tracemalloc since RSS high-water marks are
    monotonic within one process."""
    params = dict(clients=8, keys=96, ops=30_000, timeout_rate=0.01)
    seed = 23

    tracemalloc.start()
    ops = list(iter_history(seed, **params))  # buffered, like History.ops
    in_memory = check_linearizable(ops, initial=initial_values(96))
    _, memory_peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    assert in_memory.ok
    del ops

    tracemalloc.start()
    with HistoryWriter(tmp_path / "run") as writer:
        for op in iter_history(seed, **params):  # streamed, never buffered
            writer.append(op)
    streamed = check_linearizable_streaming(HistoryStore(tmp_path / "run"),
                                            initial=initial_values(96))
    _, spill_peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    assert streamed.ok
    assert streamed.total_ops == in_memory.total_ops == 30_000

    assert spill_peak * 4 <= memory_peak, \
        f"spill pipeline peaked at {spill_peak} vs {memory_peak} in-memory"
