"""Unit tests for the executable correctness invariants."""

from __future__ import annotations

import pytest

from repro.core.invariants import (
    ClientObservationChecker,
    InvariantViolation,
    chain_versions,
    check_chain_invariant,
    check_value_agreement,
)
from repro.core.kvstore import KVStoreConfig, SwitchKVStore
from repro.netsim.engine import Simulator
from repro.netsim.switch import Switch, SwitchConfig


def make_stores(n=3):
    stores = []
    for i in range(n):
        switch = Switch(Simulator(), f"S{i}", f"10.0.0.{i + 1}", config=SwitchConfig())
        stores.append(SwitchKVStore(switch, config=KVStoreConfig(slots=16)))
    return stores


def write(store, key, value, seq, session=0):
    loc = store.insert_key(key)
    store.write_loc(loc, value, seq=seq, session=session)


def test_chain_versions_reports_missing_keys():
    stores = make_stores(3)
    write(stores[0], "k", b"v", seq=2)
    versions = chain_versions(stores, "k")
    assert versions[0] == (0, 2)
    assert versions[1] is None and versions[2] is None


def test_invariant_holds_for_monotone_chain():
    stores = make_stores(3)
    for store, seq in zip(stores, (5, 4, 3), strict=True):
        write(store, "k", b"v", seq=seq)
    assert check_chain_invariant(stores, ["k"]) == []


def test_invariant_violation_detected_and_raised():
    stores = make_stores(3)
    for store, seq in zip(stores, (1, 5, 2), strict=True):
        write(store, "k", b"v", seq=seq)
    with pytest.raises(InvariantViolation):
        check_chain_invariant(stores, ["k"])
    violations = check_chain_invariant(stores, ["k"], raise_on_violation=False)
    assert len(violations) == 1


def test_invariant_uses_session_then_seq_ordering():
    stores = make_stores(2)
    write(stores[0], "k", b"v", seq=1, session=2)
    write(stores[1], "k", b"v", seq=9, session=1)
    # (2, 1) >= (1, 9): upstream newer by session, invariant holds.
    assert check_chain_invariant(stores, ["k"]) == []


def test_value_agreement_detects_divergence():
    stores = make_stores(2)
    write(stores[0], "k", b"A", seq=3)
    write(stores[1], "k", b"B", seq=3)
    with pytest.raises(InvariantViolation):
        check_value_agreement(stores, ["k"])
    assert len(check_value_agreement(stores, ["k"], raise_on_violation=False)) == 1


def test_value_agreement_allows_different_versions():
    stores = make_stores(2)
    write(stores[0], "k", b"new", seq=4)
    write(stores[1], "k", b"old", seq=3)
    assert check_value_agreement(stores, ["k"]) == []


def test_client_observation_checker_accepts_monotone_versions():
    checker = ClientObservationChecker()
    assert checker.observe("k", 0, 1)
    assert checker.observe("k", 0, 1)  # equal is fine
    assert checker.observe("k", 0, 5)
    assert checker.observe("k", 1, 1)  # new session outranks old seq
    assert checker.ok()
    assert checker.observations == 4


def test_client_observation_checker_detects_regression():
    checker = ClientObservationChecker(raise_on_violation=False)
    checker.observe("k", 0, 5)
    assert not checker.observe("k", 0, 3)
    assert not checker.ok()
    strict = ClientObservationChecker()
    strict.observe("k", 1, 1)
    with pytest.raises(InvariantViolation):
        strict.observe("k", 0, 9)


def test_client_observation_checker_ignores_failed_results():
    class FakeResult:
        ok = False
        key = b"k"
        session = 0
        seq = 0

    checker = ClientObservationChecker()
    assert checker.observe_result(FakeResult())
    assert checker.observations == 0
