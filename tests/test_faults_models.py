"""Unit tests for the fault-injection layer: link faults, partitions,
gray failures, schedules, and their determinism guarantees."""

from __future__ import annotations

import random

import pytest

from repro.core.detector import DetectorConfig, FailureDetector
from repro.netsim.faults import FaultInjector, FaultSchedule, LinkFaultModel, derive_rng
from repro.netsim.host import HostConfig
from repro.netsim.link import LinkConfig
from repro.netsim.routing import install_shortest_path_routes
from repro.netsim.topology import build_line, build_testbed
from tests.conftest import make_cluster


def make_topology():
    topo = build_testbed(host_config=HostConfig(stack_delay=0.0, nic_pps=None),
                         link_config=LinkConfig(bandwidth_bps=None))
    install_shortest_path_routes(topo)
    return topo


# --------------------------------------------------------------------- #
# Link down/up (satellite: downed links count drops instead of raising
# or silently delivering).
# --------------------------------------------------------------------- #

def test_downed_link_counts_drops_instead_of_delivering():
    topo = make_topology()
    host = topo.hosts["H0"]
    injector = FaultInjector(topo)
    injector.link_down("H0", "S0")
    host.send_udp(topo.switches["S0"].ip, 9999, payload="x", payload_bytes=10)
    topo.run(until=0.01)
    link = injector.link("H0", "S0")
    assert link.stats.dropped_down == 1
    assert link.stats.delivered == 0
    assert link.dropped == 1
    # Bringing it back up restores delivery.
    injector.link_up("H0", "S0")
    host.send_udp(topo.switches["S0"].ip, 9999, payload="x", payload_bytes=10)
    topo.run(until=0.02)
    assert link.stats.delivered == 1
    assert link.stats.dropped_down == 1


def test_link_fault_model_counts_loss_and_corruption_separately():
    topo = make_topology()
    host = topo.hosts["H0"]
    injector = FaultInjector(topo, seed=3)
    injector.set_link_faults("H0", "S0", loss_rate=0.5)
    for _ in range(60):
        host.send_udp(topo.switches["S0"].ip, 9999, payload="x", payload_bytes=10)
    topo.run(until=0.01)
    link = injector.link("H0", "S0")
    assert link.stats.dropped_loss > 0
    assert link.stats.delivered > 0
    assert link.stats.dropped_corrupt == 0
    injector.set_link_faults("H0", "S0", corrupt_rate=0.5)
    for _ in range(60):
        host.send_udp(topo.switches["S0"].ip, 9999, payload="x", payload_bytes=10)
    topo.run(until=0.02)
    assert link.stats.dropped_corrupt > 0
    injector.clear_link_faults("H0", "S0")
    assert link.faults is None


def test_link_fault_model_is_seed_deterministic():
    verdicts = []
    for _ in range(2):
        model = LinkFaultModel(random.Random(42), loss_rate=0.3,
                               corrupt_rate=0.1, reorder_jitter=1e-6)
        verdicts.append([(v.drop, v.reason, round(v.extra_delay, 12))
                        for v in (model.on_transmit(None) for _ in range(200))])
    assert verdicts[0] == verdicts[1]


def test_derive_rng_children_are_independent_streams():
    parent_a, parent_b = random.Random(7), random.Random(7)
    child_a1, child_a2 = derive_rng(parent_a), derive_rng(parent_a)
    child_b1, child_b2 = derive_rng(parent_b), derive_rng(parent_b)
    # Same derivation order, same streams.
    assert [child_a1.random() for _ in range(5)] == [child_b1.random() for _ in range(5)]
    assert [child_a2.random() for _ in range(5)] == [child_b2.random() for _ in range(5)]
    # Different children differ.
    assert child_a1.random() != child_a2.random()


# --------------------------------------------------------------------- #
# Partitions.
# --------------------------------------------------------------------- #

def test_partition_cuts_only_cross_group_links_and_heals():
    topo = make_topology()
    injector = FaultInjector(topo)
    cut = injector.partition({"S3"})
    cut_names = sorted(link.name for link in cut)
    assert cut_names == ["S0-S3", "S2-S3"]
    assert all(not link.up for link in cut)
    # Links inside the implicit rest-group stay up.
    assert injector.link("S0", "S1").up
    assert injector.link("H0", "S0").up
    with pytest.raises(RuntimeError):
        injector.partition({"S1"})
    injector.heal_partition()
    assert all(link.up for link in cut)
    kinds = [event.kind for event in injector.trace]
    assert kinds == ["partition", "partition_heal"]


def test_partition_preserves_pre_existing_down_links():
    topo = make_topology()
    injector = FaultInjector(topo)
    injector.link_down("S2", "S3")
    injector.partition({"S3"})
    injector.heal_partition()
    # The heal only restores what the partition cut.
    assert not injector.link("S2", "S3").up
    assert injector.link("S0", "S3").up


# --------------------------------------------------------------------- #
# Gray failure.
# --------------------------------------------------------------------- #

def test_gray_failed_switch_forwards_transit_but_drops_addressed_packets():
    topo = build_line(3, hosts_at={0: 1, 2: 1},
                      host_config=HostConfig(stack_delay=0.0, nic_pps=None))
    install_shortest_path_routes(topo)
    injector = FaultInjector(topo)
    injector.gray_fail_switch("S1")
    h0, h2 = topo.hosts["H0_0"], topo.hosts["H2_0"]
    received = []
    h2.bind(7000, received.append)
    # Transit through the gray switch still works...
    h0.send_udp(h2.ip, 7000, payload="through", payload_bytes=10)
    # ...but packets addressed to the gray switch itself are discarded.
    h0.send_udp(topo.switches["S1"].ip, 7000, payload="at", payload_bytes=10)
    topo.run(until=0.01)
    assert len(received) == 1
    assert topo.switches["S1"].dropped_not_serving == 1
    injector.recover_switch("S1")
    assert topo.switches["S1"].serving


def test_detector_sees_gray_failure_and_cut_off_switch():
    cluster = make_cluster()
    detector = FailureDetector(cluster.controller)
    assert detector.probe("S1")
    cluster.topology.switches["S1"].fail_gray()
    assert not detector.probe("S1")
    cluster.topology.switches["S1"].recover_device()
    assert detector.probe("S1")
    FaultInjector(cluster.topology).partition({"S3"})
    assert not detector.probe("S3")
    assert detector.probe("S2")


# --------------------------------------------------------------------- #
# Schedules.
# --------------------------------------------------------------------- #

def test_schedule_arms_timed_and_trigger_events():
    topo = make_topology()
    injector = FaultInjector(topo, seed=1)
    fired = []
    schedule = (FaultSchedule(injector, poll_interval=1e-3)
                .at(0.010, "link_down", "S0", "S1")
                .after(0.020, "link_up", "S0", "S1")
                .when(lambda: not injector.link("S0", "S1").up,
                      lambda: fired.append(topo.sim.now), label="noticed"))
    schedule.arm()
    with pytest.raises(RuntimeError):
        schedule.arm()
    topo.run(until=0.05)
    kinds = [(event.kind, round(event.time, 6)) for event in injector.trace]
    assert ("link_down", 0.010) in kinds
    assert ("link_up", 0.020) in kinds  # after() counts from arm time
    # The trigger fired exactly once, while the link was down.
    assert len(fired) == 1
    assert 0.010 <= fired[0] <= 0.020


def test_same_seed_schedules_replay_identical_traces():
    def run_once(seed):
        topo = make_topology()
        injector = FaultInjector(topo, seed=seed)
        (FaultSchedule(injector)
         .at(0.005, "set_link_faults", "S0", "S1", loss_rate=0.4)
         .at(0.010, "partition", {"S3"})
         .at(0.015, "heal_partition")
         .at(0.020, "fail_switch", "S2")
         .arm())
        host = topo.hosts["H0"]
        for i in range(50):
            topo.sim.schedule(i * 1e-3, lambda: host.send_udp(
                topo.switches["S1"].ip, 9000, payload="p", payload_bytes=10))
        topo.run(until=0.06)
        return injector.trace_signature(), injector.drop_report()

    trace_a, drops_a = run_once(9)
    trace_b, drops_b = run_once(9)
    assert trace_a == trace_b
    assert drops_a == drops_b


def test_detector_drives_failover_without_direct_controller_calls():
    cluster = make_cluster()
    keys = cluster.populate(20)
    injector = cluster.faults()
    cluster.fault_schedule().at(0.05, "fail_switch", "S1").arm()
    detector = cluster.start_failure_detector(DetectorConfig(
        probe_interval=20e-3, suspicion_threshold=1, auto_recover=False))
    cluster.run(until=0.2)
    assert "S1" in cluster.controller.failed_switches
    assert detector.detections and detector.detections[0][1] == "S1"
    # Detection happened within one probe interval of the injection.
    assert 0.05 <= detector.detections[0][0] <= 0.05 + 20e-3 + 1e-9
    # The cluster still serves after the detector-driven failover.
    agent = cluster.agent("H0")
    assert agent.write_sync(keys[0], b"post", deadline=5.0).ok


def test_detector_reintroduces_healed_partition():
    cluster = make_cluster()
    cluster.populate(20)
    cluster.fault_schedule().at(0.05, "partition", {"S3"}).at(
        0.5, "heal_partition").arm()
    detector = cluster.start_failure_detector(DetectorConfig(
        probe_interval=20e-3, suspicion_threshold=2,
        recovery_start_delay=0.0, reintroduce_threshold=2))
    cluster.run(until=3.0)
    assert ("S3" not in cluster.controller.failed_switches)
    assert any(name == "S3" for _, name in detector.detections)
    assert any(name == "S3" for _, name in detector.reintroductions)
