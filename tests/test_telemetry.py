"""The deterministic telemetry plane: tracing, metrics, event log.

Covers the building blocks (log-bucket histograms, the bounded
``LatencyRecorder``, ``TelemetryConfig`` coercion), the determinism
contracts (two traced seeded runs spill byte-identical ``trace/v1``
artifacts; enabling telemetry leaves the replay signature untouched),
the control-plane event log and its derived failure timeline under an
injected switch failure, and the ``python -m repro.netsim.telemetry``
report CLI.
"""

from __future__ import annotations

import hashlib
import json

import pytest

from repro.core import trace as trace_mod
from repro.core.trace import (
    STAGES,
    iter_spans,
    read_ndjson,
    run_info,
    stage_percentiles,
    trace_breakdowns,
)
from repro.deploy import DeploymentSpec, ScenarioChecks, WorkloadSpec, run_scenario
from repro.netsim.stats import LatencyRecorder
from repro.netsim.telemetry import (
    LogBucketHistogram,
    MetricsRegistry,
    TelemetryConfig,
    failure_timeline,
    main as telemetry_cli,
    peak_rss_bytes,
)

SEED = 11

TRACE_FILES = ("spans.ndjson", "metrics.ndjson", "events.ndjson")


def _spec(seed=SEED, telemetry=None, **overrides) -> DeploymentSpec:
    return DeploymentSpec(backend="netchain", store_size=32, value_size=64,
                          seed=seed, telemetry=telemetry, **overrides)


def _workload(duration=0.03) -> WorkloadSpec:
    return WorkloadSpec(num_clients=2, concurrency=4, write_ratio=0.3,
                        duration=duration, drain=0.05)


def _run(spec, workload=None, checks=None):
    return run_scenario(spec, workload or _workload(),
                        checks or ScenarioChecks(linearizability=True))


def _dir_digests(run_dir):
    return {name: hashlib.sha256((run_dir / name).read_bytes()).hexdigest()
            for name in TRACE_FILES}


# --------------------------------------------------------------------- #
# Log-bucket histogram.
# --------------------------------------------------------------------- #


def test_histogram_counts_and_bounds():
    hist = LogBucketHistogram()
    for value in (1e-6, 2e-6, 1e-3, 0.5):
        hist.record(value)
    assert hist.count == 4
    assert hist.min == pytest.approx(1e-6)
    assert hist.max == pytest.approx(0.5)
    assert hist.mean() == pytest.approx((1e-6 + 2e-6 + 1e-3 + 0.5) / 4)
    # Percentiles land within a bucket's relative error of the exact value
    # and are clamped to the observed range.
    assert hist.percentile(0.0) == pytest.approx(1e-6, rel=0.06)
    assert hist.percentile(100.0) == pytest.approx(0.5, rel=0.06)
    p50 = hist.percentile(50.0)
    assert 9e-7 <= p50 <= 1.1e-3


def test_histogram_relative_error_bound():
    # 40 buckets per decade -> ~6% relative width; the geometric-midpoint
    # estimate stays within half a bucket of any recorded value.
    hist = LogBucketHistogram()
    value = 3.7e-4
    hist.record(value)
    estimate = hist.percentile(50.0)
    assert abs(estimate - value) / value < 0.06


def test_histogram_underflow_overflow():
    hist = LogBucketHistogram()
    hist.record(0.0)       # below lo -> underflow bucket
    hist.record(1e30)      # above the top decade -> overflow bucket
    assert hist.count == 2
    assert hist.percentile(0.0) == pytest.approx(0.0)
    assert hist.percentile(100.0) == pytest.approx(1e30)


def test_histogram_merge_matches_combined():
    a, b, combined = (LogBucketHistogram() for _ in range(3))
    for i in range(100):
        value = (i + 1) * 1e-5
        (a if i % 2 else b).record(value)
        combined.record(value)
    a.merge(b)
    assert a.count == combined.count
    assert a.counts == combined.counts
    assert a.min == combined.min and a.max == combined.max
    assert a.mean() == pytest.approx(combined.mean())
    for p in (50.0, 95.0, 99.0):
        assert a.percentile(p) == combined.percentile(p)


# --------------------------------------------------------------------- #
# Bounded LatencyRecorder.
# --------------------------------------------------------------------- #


def test_recorder_exact_until_limit():
    recorder = LatencyRecorder(max_exact_samples=8)
    for value in range(1, 8):
        recorder.record(float(value))
    assert not recorder.collapsed
    assert recorder.percentile(50) == 4.0  # exact nearest-rank
    recorder.record(8.0)
    recorder.record(9.0)  # ninth sample crosses the limit
    assert recorder.collapsed
    assert recorder.samples == []
    assert recorder.count() == 9
    assert recorder.mean() == pytest.approx(5.0)
    assert recorder.percentile(50) == pytest.approx(5.0, rel=0.06)


def test_recorder_collapsed_memory_is_bounded():
    recorder = LatencyRecorder(max_exact_samples=100)
    for i in range(100_000):
        recorder.record(1e-6 * (1 + i % 1000))
    assert recorder.collapsed
    assert len(recorder.samples) == 0
    assert recorder.count() == 100_000


def test_recorder_merge_modes():
    exact_a = LatencyRecorder(max_exact_samples=10)
    exact_b = LatencyRecorder(max_exact_samples=10)
    for value in (1.0, 2.0, 3.0):
        exact_a.record(value)
    for value in (4.0, 5.0):
        exact_b.record(value)
    exact_a.merge(exact_b)
    assert not exact_a.collapsed  # 5 <= 10 stays exact
    assert exact_a.count() == 5
    assert exact_a.percentile(100) == 5.0

    big = LatencyRecorder(max_exact_samples=4)
    big.merge(exact_a)  # 5 > 4 collapses on merge
    assert big.collapsed
    assert big.count() == 5
    assert big.mean() == pytest.approx(3.0)


def test_recorder_unbounded_mode_matches_legacy():
    recorder = LatencyRecorder(max_exact_samples=None)
    for i in range(200_000):
        recorder.record(float(i))
    assert not recorder.collapsed
    assert recorder.count() == 200_000


# --------------------------------------------------------------------- #
# Config coercion, registry, event log units.
# --------------------------------------------------------------------- #


def test_telemetry_config_coercion():
    assert TelemetryConfig.coerce(None) is None
    assert TelemetryConfig.coerce(False) is None
    assert isinstance(TelemetryConfig.coerce(True), TelemetryConfig)
    cfg = TelemetryConfig.coerce({"sample_interval": 1e-3, "trace": False})
    assert cfg.sample_interval == 1e-3 and cfg.trace is False
    same = TelemetryConfig()
    assert TelemetryConfig.coerce(same) is same
    with pytest.raises(ValueError):
        TelemetryConfig.coerce({"no_such_knob": 1})
    with pytest.raises(ValueError):
        TelemetryConfig(sample_interval=0.0).validate()
    with pytest.raises(ValueError):
        TelemetryConfig(trace_sample=0).validate()


def test_spec_validates_telemetry():
    _spec(telemetry={"sample_interval": 1e-3}).validate()
    with pytest.raises(ValueError):
        _spec(telemetry={"bogus": True}).validate()
    with pytest.raises(ValueError):
        _spec(telemetry={"sample_interval": -1.0}).validate()


def test_metrics_registry_summary():
    registry = MetricsRegistry()
    registry.inc("queries")
    registry.inc("queries", 2)
    registry.gauge("depth", 4.0)
    registry.gauge("depth", 2.0)  # gauges keep the last value
    registry.histogram("lat").record(1e-4)
    summary = registry.summary()
    assert summary["counters"]["queries"] == 3
    assert summary["gauges"]["depth"] == 2.0
    assert summary["histograms"]["lat"]["count"] == 1


def test_peak_rss_bytes_positive():
    assert peak_rss_bytes() > 0


def test_failure_timeline_derivation():
    events = [
        {"t": 0.10, "ev": "failure_detected", "switch": "S1"},
        {"t": 0.10, "ev": "fast_failover", "switch": "S1"},
        {"t": 0.10, "ev": "recovery_start", "switch": "S1", "groups": 3},
        {"t": 0.25, "ev": "recovery_complete", "switch": "S1", "recovered": 3},
    ]
    timeline = failure_timeline(events)
    entry = next(e for e in timeline if e["switch"] == "S1")
    assert entry["detected_at"] == pytest.approx(0.10)
    assert entry["failover_latency"] == pytest.approx(0.0)
    assert entry["recovery_duration"] == pytest.approx(0.15)
    assert entry["recovery_outcome"] == "recovery_complete"


# --------------------------------------------------------------------- #
# Scenario integration: determinism contracts.
# --------------------------------------------------------------------- #


def test_traced_runs_are_byte_identical(tmp_path):
    digests = []
    signatures = []
    for label in ("a", "b"):
        run_dir = tmp_path / label
        result = _run(_spec(telemetry={"run_dir": str(run_dir)}))
        assert result.ok()
        assert result.telemetry_dir == run_dir
        assert result.metrics is not None
        assert result.metrics["schema"] == "telemetry/v1"
        assert result.metrics["spans"] > 0
        digests.append(_dir_digests(run_dir))
        signatures.append(result.signature())
    assert digests[0] == digests[1]
    assert signatures[0] == signatures[1]


def test_telemetry_does_not_perturb_replay(tmp_path):
    off = _run(_spec(telemetry=None))
    on = _run(_spec(telemetry={"run_dir": str(tmp_path / "run")}))
    assert off.signature() == on.signature()
    assert off.completed_ops == on.completed_ops
    assert off.metrics is None and off.telemetry_dir is None


def test_trace_run_dir_layout_and_schemas(tmp_path):
    run_dir = tmp_path / "run"
    _run(_spec(telemetry={"run_dir": str(run_dir)}))
    for name, schema in (("spans.ndjson", "trace/v1"),
                         ("metrics.ndjson", "trace-metrics/v1"),
                         ("events.ndjson", "trace-events/v1")):
        header, records = read_ndjson(run_dir / name)
        assert header["schema"] == schema
        assert header["meta"]["seed"] == SEED
        for record in records:
            assert "t" in record
    # Span records are ASCII NDJSON with sorted keys (canonical bytes).
    with open(run_dir / "spans.ndjson", "rb") as handle:
        next(handle)  # header
        line = next(handle)
        record = json.loads(line)
        canonical = json.dumps(record, sort_keys=True,
                               separators=(",", ":")).encode("ascii") + b"\n"
        assert line == canonical
    info = run_info(run_dir)
    assert info["spans.ndjson"]["records"] > 0


def test_trace_breakdowns_account_latency(tmp_path):
    run_dir = tmp_path / "run"
    _run(_spec(telemetry={"run_dir": str(run_dir)}))
    traces = trace_breakdowns(iter_spans(run_dir))
    assert traces
    completed = [t for t in traces.values() if t["completed"]]
    assert completed
    for entry in completed:
        total = sum(entry["stages"].values()) + entry["other"]
        assert total == pytest.approx(entry["latency"], rel=1e-6, abs=1e-12)
        assert entry["op"] in ("read", "write", "insert", "delete", "cas")
    table = stage_percentiles(traces)
    assert set(table) == set(STAGES) | {"other", "total"}
    assert table["total"]["p50"] > 0


def test_trace_sampling_reduces_spans(tmp_path):
    full = tmp_path / "full"
    sampled = tmp_path / "sampled"
    r_full = _run(_spec(telemetry={"run_dir": str(full)}))
    r_sampled = _run(_spec(telemetry={"run_dir": str(sampled),
                                      "trace_sample": 8}))
    assert r_full.signature() == r_sampled.signature()
    assert 0 < r_sampled.metrics["traces"] < r_full.metrics["traces"]
    assert r_sampled.metrics["spans"] < r_full.metrics["spans"]


def test_metrics_only_mode(tmp_path):
    run_dir = tmp_path / "run"
    result = _run(_spec(telemetry={"run_dir": str(run_dir), "trace": False}))
    assert not (run_dir / "spans.ndjson").exists()
    _, records = read_ndjson(run_dir / "metrics.ndjson")
    assert records
    assert result.metrics["spans"] == 0
    # The sampler still tracked engine + queue state.
    assert result.metrics["sampled_ticks"] == len(records)


# --------------------------------------------------------------------- #
# Control-plane event log under an injected failure.
# --------------------------------------------------------------------- #


def test_event_log_records_failover(tmp_path):
    run_dir = tmp_path / "run"
    spec = _spec(telemetry={"run_dir": str(run_dir)},
                 faults=[(0.02, "fail_switch", "S1")],
                 options={"fault_reaction": True})
    result = run_scenario(spec, _workload(duration=0.05),
                          ScenarioChecks(linearizability=True))
    assert result.ok()
    _, events = read_ndjson(run_dir / "events.ndjson")
    kinds = [event["ev"] for event in events]
    assert "failure_detected" in kinds
    assert "fast_failover" in kinds
    assert "recovery_start" in kinds
    detected = next(e for e in events if e["ev"] == "failure_detected")
    assert detected["switch"] == "S1"
    assert detected["t"] >= 0.02
    # Events are time-ordered (single sim clock, append order).
    times = [event["t"] for event in events]
    assert times == sorted(times)
    timeline = failure_timeline(events)
    entry = next(e for e in timeline if e["switch"] == "S1")
    assert entry["detected_at"] >= 0.02


# --------------------------------------------------------------------- #
# CLI.
# --------------------------------------------------------------------- #


def test_cli_report_smoke(tmp_path, capsys):
    run_dir = tmp_path / "run"
    _run(_spec(telemetry={"run_dir": str(run_dir)}))
    assert telemetry_cli(["report", str(run_dir)]) == 0
    out = capsys.readouterr().out
    assert "Critical-path stages" in out
    assert "host_stack" in out
    assert "Slowest trace" in out
    assert telemetry_cli(["info", str(run_dir)]) == 0
    info = json.loads(capsys.readouterr().out)
    assert info["spans.ndjson"]["records"] > 0


def test_format_report_handles_empty_events(tmp_path):
    run_dir = tmp_path / "run"
    _run(_spec(telemetry={"run_dir": str(run_dir)}))
    report = trace_mod.format_report(run_dir)
    assert "Control-plane events" not in report or "(none)" not in report
