"""Unit tests for the simplified reliable transport (TCP model)."""

from __future__ import annotations

from repro.netsim.host import HostConfig
from repro.netsim.link import LinkConfig
from repro.netsim.routing import install_shortest_path_routes
from repro.netsim.tcp import TcpConfig, TcpConnection
from repro.netsim.topology import build_line


def make_pair(loss_rate=0.0, tcp_config=None):
    topo = build_line(1, hosts_at={0: 2},
                      host_config=HostConfig(stack_delay=1e-6, nic_pps=None),
                      link_config=LinkConfig(loss_rate=0.0))
    install_shortest_path_routes(topo)
    if loss_rate:
        topo.switches["S0"].injected_loss_rate = loss_rate
    hosts = list(topo.hosts.values())
    conn = TcpConnection(hosts[0], hosts[1], config=tcp_config or TcpConfig())
    return topo, hosts[0], hosts[1], conn


def test_messages_delivered_in_order():
    topo, a, b, conn = make_pair()
    got = []
    conn.endpoint(b).on_message = got.append
    for i in range(20):
        conn.endpoint(a).send(f"msg{i}")
    topo.run(until=1.0)
    assert got == [f"msg{i}" for i in range(20)]


def test_bidirectional_delivery():
    topo, a, b, conn = make_pair()
    got_a, got_b = [], []
    conn.endpoint(a).on_message = got_a.append
    conn.endpoint(b).on_message = got_b.append
    conn.endpoint(a).send("to-b")
    conn.endpoint(b).send("to-a")
    topo.run(until=1.0)
    assert got_b == ["to-b"]
    assert got_a == ["to-a"]


def test_reliable_delivery_under_loss():
    topo, a, b, conn = make_pair(loss_rate=0.3)
    got = []
    conn.endpoint(b).on_message = got.append
    for i in range(30):
        conn.endpoint(a).send(i)
    topo.run(until=20.0)
    assert got == list(range(30))
    assert conn.endpoint(a).retransmissions > 0


def test_loss_reduces_goodput():
    """Heavy loss makes delivery dramatically slower (Figure 9(d) mechanism)."""
    def delivered_by(loss, deadline):
        topo, a, b, conn = make_pair(loss_rate=loss)
        got = []
        conn.endpoint(b).on_message = got.append
        for i in range(200):
            conn.endpoint(a).send(i)
        topo.run(until=deadline)
        return len(got)

    clean = delivered_by(0.0, 0.02)
    lossy = delivered_by(0.4, 0.02)
    assert lossy < clean


def test_no_duplicate_deliveries_despite_retransmission():
    topo, a, b, conn = make_pair(loss_rate=0.3)
    got = []
    conn.endpoint(b).on_message = got.append
    for i in range(15):
        conn.endpoint(a).send(i)
    topo.run(until=20.0)
    assert got == sorted(set(got))
    assert len(got) == 15


def test_congestion_window_halves_on_timeout():
    config = TcpConfig(initial_cwnd=16)
    topo, a, b, conn = make_pair(loss_rate=1.0, tcp_config=config)
    endpoint = conn.endpoint(a)
    endpoint.send("doomed")
    topo.run(until=0.5)
    assert endpoint._cwnd < 16


def test_closed_endpoint_stops_sending():
    topo, a, b, conn = make_pair()
    got = []
    conn.endpoint(b).on_message = got.append
    conn.endpoint(a).close()
    conn.endpoint(a).send("nope")
    topo.run(until=0.5)
    assert got == []


def test_close_cancels_retransmission_timers():
    topo, a, b, conn = make_pair(loss_rate=1.0)
    endpoint = conn.endpoint(a)
    endpoint.send("lost")
    conn.close()
    before = endpoint.retransmissions
    topo.run(until=2.0)
    assert endpoint.retransmissions == before


def test_stats_counters():
    topo, a, b, conn = make_pair()
    conn.endpoint(b).on_message = lambda m: None
    for i in range(5):
        conn.endpoint(a).send(i)
    topo.run(until=1.0)
    assert conn.endpoint(a).messages_sent == 5
    assert conn.endpoint(b).messages_delivered == 5
